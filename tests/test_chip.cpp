// The multi-tile chip model (src/chip/): tile-partition geometry (partial
// tiles, non-square games), tile reads vs the monolithic array, the tiled
// two-phase evaluator's per-tile incremental state, and the two acceptance
// contracts:
//   * a 1×1 tile grid byte-reproduces the monolithic evaluator (identical
//     RNG draw sequence, identical SA trajectories, full non-idealities on);
//   * the noise-off digital readout of a 128×128-action integer game is
//     bit-identical to core::ExactMaxQubo on every SA trajectory (power-of-
//     two interval count makes both sides exact rational arithmetic).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "chip/tile_partition.hpp"
#include "chip/tiled_crossbar.hpp"
#include "chip/tiled_two_phase.hpp"
#include "core/anneal.hpp"
#include "core/maxqubo.hpp"
#include "core/two_phase.hpp"
#include "game/games.hpp"
#include "game/random_games.hpp"
#include "util/rng.hpp"

namespace cnash::chip {
namespace {

core::TwoPhaseConfig ideal_config() {
  core::TwoPhaseConfig cfg;
  cfg.array.ideal = true;
  cfg.wta.offset_sigma = 0.0;
  cfg.wta.read_noise_rel = 0.0;
  cfg.adc_bits = 16;
  cfg.adc_noise_rel = 0.0;
  return cfg;
}

ChipConfig chip_grid(std::size_t rows, std::size_t cols,
                     ChipReadout readout = ChipReadout::kAnalogHTree) {
  ChipConfig c;
  c.tile_rows = rows;
  c.tile_cols = cols;
  c.readout = readout;
  return c;
}

la::Matrix random_integer_matrix(std::size_t n, std::size_t m, int hi,
                                 util::Rng& rng) {
  la::Matrix a(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j)
      a(i, j) = static_cast<double>(rng.uniform_int(0, hi));
  return a;
}

std::vector<std::uint32_t> random_counts(std::size_t len, std::uint32_t total,
                                         util::Rng& rng) {
  std::vector<std::uint32_t> c(len, 0);
  for (std::uint32_t t = 0; t < total; ++t) ++c[rng.uniform_index(len)];
  return c;
}

// ---- TilePartition geometry -------------------------------------------------

TEST(TilePartition, DivisibleGridGeometry) {
  xbar::MappingGeometry g{/*n=*/8, /*m=*/8, /*I=*/8, /*t=*/4};
  const TilePartition part(g, /*tile_rows=*/16, /*tile_cols=*/64);
  EXPECT_EQ(part.rows_per_tile(), 2u);  // 16 / 8
  EXPECT_EQ(part.cols_per_tile(), 2u);  // 64 / 32
  EXPECT_EQ(part.grid_rows(), 4u);
  EXPECT_EQ(part.grid_cols(), 4u);
  EXPECT_EQ(part.num_tiles(), 16u);
  const TileRange r = part.range(3, 3);
  EXPECT_EQ(r.rows(), 2u);
  EXPECT_EQ(r.cols(), 2u);
}

TEST(TilePartition, PartialLastRowAndColumn) {
  // n·I = 56 and t·m·I = 5·8·4 = 160 are not divisible by the tile dims:
  // the last grid row/column holds partial tiles.
  xbar::MappingGeometry g{/*n=*/7, /*m=*/5, /*I=*/8, /*t=*/4};
  const TilePartition part(g, 16, 64);
  EXPECT_EQ(part.grid_rows(), 4u);  // ceil(7 / 2)
  EXPECT_EQ(part.grid_cols(), 3u);  // ceil(5 / 2)
  EXPECT_EQ(part.range(3, 0).rows(), 1u);  // partial row
  EXPECT_EQ(part.range(0, 2).cols(), 1u);  // partial column
  EXPECT_EQ(part.range(3, 2).rows(), 1u);
  EXPECT_EQ(part.range(3, 2).cols(), 1u);
  // Ranges tile the element matrix exactly.
  std::size_t rows = 0, cols = 0;
  for (std::size_t tr = 0; tr < part.grid_rows(); ++tr)
    rows += part.range(tr, 0).rows();
  for (std::size_t tc = 0; tc < part.grid_cols(); ++tc)
    cols += part.range(0, tc).cols();
  EXPECT_EQ(rows, g.n);
  EXPECT_EQ(cols, g.m);
  // Row/col -> tile lookups agree with the ranges.
  for (std::size_t i = 0; i < g.n; ++i) {
    const std::size_t tr = part.tile_of_row(i);
    EXPECT_GE(i, part.range(tr, 0).i0);
    EXPECT_LT(i, part.range(tr, 0).i1);
  }
}

TEST(TilePartition, RejectsTilesSmallerThanOneElementBlock) {
  xbar::MappingGeometry g{4, 4, /*I=*/12, /*t=*/7};
  EXPECT_THROW(TilePartition(g, 11, 1024), std::invalid_argument);   // rows < I
  EXPECT_THROW(TilePartition(g, 64, 83), std::invalid_argument);  // cols < I·t
  EXPECT_NO_THROW(TilePartition(g, 12, 84));  // exactly one block
}

// ---- TiledCrossbar reads vs the monolithic array ----------------------------

class TiledReadTest : public ::testing::TestWithParam<std::pair<std::size_t,
                                                               std::size_t>> {};

TEST_P(TiledReadTest, PartialsSumToMonolithicReads) {
  const auto [n, m] = GetParam();
  util::Rng rng(1234);
  const la::Matrix payoff = random_integer_matrix(n, m, 5, rng);
  const std::uint32_t intervals = 8;

  xbar::ArrayConfig cfg;
  cfg.ideal = true;  // identical per-cell currents on both sides
  util::Rng prog_a(1), prog_b(1);
  xbar::CrossbarMapping mono_map(payoff, intervals, 0, 2);
  const std::uint32_t t = mono_map.geometry().cells_per_element;
  xbar::ProgrammedCrossbar mono(std::move(mono_map), cfg, prog_a);
  // 16 physical rows = 2 element rows; one element block column per tile.
  TiledCrossbar tiled(payoff, intervals, 0, 2, cfg, 16,
                      static_cast<std::size_t>(intervals) * t, prog_b);
  ASSERT_GT(tiled.partition().num_tiles(), 1u);

  util::Rng act_rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const auto p = random_counts(n, intervals, act_rng);
    const auto q = random_counts(m, intervals, act_rng);

    // MV: summing the tile-column partials reproduces the monolithic line
    // currents (ideal cells -> same addends, different association).
    std::vector<double> partials(tiled.partition().grid_cols() * n, 0.0);
    tiled.read_mv_partials(q.data(), partials.data());
    const std::vector<double> mono_mv = mono.read_mv(q);
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (std::size_t tc = 0; tc < tiled.partition().grid_cols(); ++tc)
        sum += partials[tc * n + i];
      EXPECT_NEAR(sum, mono_mv[i], 1e-9 * (std::abs(mono_mv[i]) + 1e-12));
    }

    // VMV: the tile grid sums to the monolithic total.
    std::vector<double> grid(tiled.partition().num_tiles(), 0.0);
    tiled.read_vmv_partials(p.data(), q.data(), grid.data());
    double total = 0.0;
    for (const double v : grid) total += v;
    const double mono_vmv = mono.read_vmv(p, q);
    EXPECT_NEAR(total, mono_vmv, 1e-9 * (std::abs(mono_vmv) + 1e-12));

    // Digital units match the exact combinatorial cell count.
    EXPECT_EQ(static_cast<std::uint64_t>(
                  tiled.digital_vmv_units(p.data(), q.data())),
              tiled.mapping().conducting_cells(p, q));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, TiledReadTest,
                         ::testing::Values(std::make_pair<std::size_t,
                                                          std::size_t>(4, 4),
                                           std::make_pair<std::size_t,
                                                          std::size_t>(7, 5),
                                           std::make_pair<std::size_t,
                                                          std::size_t>(3, 9)));

TEST(TiledCrossbar, DeltaKernelsMatchFullReads) {
  util::Rng rng(555);
  const std::size_t n = 6, m = 7;
  const la::Matrix payoff = random_integer_matrix(n, m, 4, rng);
  const std::uint32_t intervals = 8;
  xbar::ArrayConfig cfg;  // realistic variability: deltas must still be exact
  util::Rng prog(42);
  TiledCrossbar tiled(payoff, intervals, 0, 2, cfg, 16, 64, prog);
  const std::size_t gc = tiled.partition().grid_cols();

  util::Rng act_rng(7);
  auto p = random_counts(n, intervals, act_rng);
  auto q = random_counts(m, intervals, act_rng);
  std::vector<double> partials(gc * n, 0.0);
  tiled.read_mv_partials(q.data(), partials.data());
  std::vector<double> grid(tiled.partition().num_tiles(), 0.0);
  tiled.read_vmv_partials(p.data(), q.data(), grid.data());

  // Move one q tick j_from -> j_to through the delta kernels...
  std::size_t j_from = 0;
  while (q[j_from] == 0) ++j_from;
  const std::size_t j_to = (j_from + 3) % m;
  double vmv_total = 0.0;
  for (const double v : grid) vmv_total += v;
  vmv_total += tiled.vmv_group_delta(j_from, q[j_from], q[j_from] - 1,
                                     p.data(), grid.data()) +
               tiled.vmv_group_delta(j_to, q[j_to], q[j_to] + 1, p.data(),
                                     grid.data());
  tiled.mv_group_delta(j_from, q[j_from], q[j_from] - 1, partials.data());
  tiled.mv_group_delta(j_to, q[j_to], q[j_to] + 1, partials.data());
  --q[j_from];
  ++q[j_to];

  // ...and compare against fresh full reads of the moved profile.
  std::vector<double> fresh_partials(gc * n, 0.0);
  tiled.read_mv_partials(q.data(), fresh_partials.data());
  for (std::size_t k = 0; k < partials.size(); ++k)
    EXPECT_NEAR(partials[k], fresh_partials[k],
                1e-9 * (std::abs(fresh_partials[k]) + 1e-15));
  std::vector<double> fresh_grid(tiled.partition().num_tiles(), 0.0);
  tiled.read_vmv_partials(p.data(), q.data(), fresh_grid.data());
  double fresh_total = 0.0;
  for (const double v : fresh_grid) fresh_total += v;
  EXPECT_NEAR(vmv_total, fresh_total, 1e-9 * (std::abs(fresh_total) + 1e-15));
  for (std::size_t k = 0; k < grid.size(); ++k)
    EXPECT_NEAR(grid[k], fresh_grid[k], 1e-9 * (std::abs(fresh_grid[k]) + 1e-15));
}

// ---- 1×1 grid byte-reproduces the monolithic evaluator ----------------------

TEST(TiledTwoPhase, SingleTileByteReproducesMonolithicEvaluator) {
  // Full non-idealities ON: device variability, WTA offsets + read noise,
  // ADC quantisation + noise. The tiled evaluator mirrors the monolithic
  // constructor and digitisation draw sequence exactly, so every evaluation
  // is bit-identical when the whole game fits one tile.
  const game::BimatrixGame g = game::bird_game();
  const core::TwoPhaseConfig cfg;  // realistic defaults
  core::TwoPhaseEvaluator mono(g, 12, cfg, util::Rng(0xA5A5));
  TiledTwoPhaseEvaluator tiled(g, 12, cfg, chip_grid(1024, 4096),
                               util::Rng(0xA5A5));
  ASSERT_EQ(tiled.chip_m().partition().num_tiles(), 1u);

  util::Rng prof_rng(31);
  for (int t = 0; t < 50; ++t) {
    game::QuantizedProfile prof{game::QuantizedStrategy::random(3, 12, prof_rng),
                                game::QuantizedStrategy::random(3, 12,
                                                                prof_rng)};
    const double f_mono = mono.evaluate(prof);
    const double f_tiled = tiled.evaluate(prof);
    EXPECT_EQ(f_mono, f_tiled);  // bitwise
  }
}

TEST(TiledTwoPhase, SingleTileSaTrajectoryIsByteIdentical) {
  // The incremental propose/commit path (the one SA exercises) replays the
  // monolithic trajectory move for move: same accepted count, same final /
  // best profiles and bitwise-identical objectives.
  const game::BimatrixGame g = game::battle_of_sexes();
  const core::TwoPhaseConfig cfg;  // realistic defaults, incremental on
  core::SaOptions sa;
  sa.iterations = 4000;

  core::TwoPhaseEvaluator mono(g, 12, cfg, util::Rng(77));
  TiledTwoPhaseEvaluator tiled(g, 12, cfg, chip_grid(1024, 4096),
                               util::Rng(77));
  ASSERT_NE(tiled.incremental(), nullptr);

  util::Rng sa_rng_a(0xF00D), sa_rng_b(0xF00D);
  const core::SaRunResult ra = core::simulated_annealing(mono, 12, sa, sa_rng_a);
  const core::SaRunResult rb = core::simulated_annealing(tiled, 12, sa,
                                                         sa_rng_b);
  EXPECT_EQ(ra.final_objective, rb.final_objective);
  EXPECT_EQ(ra.best_objective, rb.best_objective);
  EXPECT_EQ(ra.accepted, rb.accepted);
  EXPECT_EQ(ra.final_profile.p.counts(), rb.final_profile.p.counts());
  EXPECT_EQ(ra.final_profile.q.counts(), rb.final_profile.q.counts());
  EXPECT_EQ(mono.refresh_count(), tiled.refresh_count());
}

// ---- Multi-tile evaluation fidelity -----------------------------------------

TEST(TiledTwoPhase, MultiTileNoiseOffMatchesMonolithic) {
  // Sharding only changes fp summation order; after ADC snapping the
  // digitised objective of the multi-tile chip equals the monolithic one.
  util::Rng game_rng(2020);
  const game::BimatrixGame g(random_integer_matrix(10, 9, 4, game_rng),
                             random_integer_matrix(10, 9, 4, game_rng),
                             "multi-tile");
  const core::TwoPhaseConfig cfg = ideal_config();
  core::TwoPhaseEvaluator mono(g, 8, cfg, util::Rng(4));
  TiledTwoPhaseEvaluator tiled(g, 8, cfg, chip_grid(16, 96), util::Rng(4));
  ASSERT_GT(tiled.chip_m().partition().num_tiles(), 4u);

  util::Rng prof_rng(88);
  for (int t = 0; t < 30; ++t) {
    game::QuantizedProfile prof{game::QuantizedStrategy::random(10, 8, prof_rng),
                                game::QuantizedStrategy::random(9, 8,
                                                                prof_rng)};
    EXPECT_EQ(mono.evaluate(prof), tiled.evaluate(prof));
  }
}

TEST(TiledTwoPhase, MultiTileIncrementalMatchesFullReadPath) {
  // Same SA seed, incremental vs full evaluation on the multi-tile chip:
  // noise off, the trajectories must agree bit-for-bit (monolithic
  // incremental contract, lifted to the tile grid).
  util::Rng game_rng(3141);
  const game::BimatrixGame g(random_integer_matrix(9, 9, 4, game_rng),
                             random_integer_matrix(9, 9, 4, game_rng),
                             "inc-vs-full");
  core::SaOptions sa;
  sa.iterations = 3000;

  auto run = [&](bool incremental) {
    core::TwoPhaseConfig cfg = ideal_config();
    cfg.incremental = incremental;
    TiledTwoPhaseEvaluator ev(g, 8, cfg, chip_grid(16, 96), util::Rng(808));
    util::Rng sa_rng(909);
    return core::simulated_annealing(ev, 8, sa, sa_rng);
  };
  const core::SaRunResult full = run(false);
  const core::SaRunResult inc = run(true);
  EXPECT_EQ(full.final_objective, inc.final_objective);
  EXPECT_EQ(full.best_objective, inc.best_objective);
  EXPECT_EQ(full.accepted, inc.accepted);
  EXPECT_EQ(full.final_profile.p.counts(), inc.final_profile.p.counts());
  EXPECT_EQ(full.final_profile.q.counts(), inc.final_profile.q.counts());
}

TEST(TiledTwoPhase, CommittedPerTileStateTracksFullReads) {
  // After thousands of committed tick moves the per-tile committed partials
  // must still agree with a fresh tile-grid read of the final profile
  // (drift bounded by the refresh mechanism).
  util::Rng game_rng(606);
  const game::BimatrixGame g(random_integer_matrix(8, 8, 4, game_rng),
                             random_integer_matrix(8, 8, 4, game_rng),
                             "drift");
  core::TwoPhaseConfig cfg;  // realistic array, noise on
  core::SaOptions sa;
  sa.iterations = 5000;
  TiledTwoPhaseEvaluator ev(g, 8, cfg, chip_grid(16, 96), util::Rng(1212));
  util::Rng sa_rng(3434);
  const core::SaRunResult res = core::simulated_annealing(ev, 8, sa, sa_rng);

  const std::size_t n = g.num_actions1();
  std::vector<double> fresh(ev.chip_m().partition().grid_cols() * n, 0.0);
  ev.chip_m().read_mv_partials(res.final_profile.q.counts().data(),
                               fresh.data());
  const auto& committed = ev.committed_mv_partials_m();
  ASSERT_EQ(committed.size(), fresh.size());
  for (std::size_t k = 0; k < fresh.size(); ++k)
    EXPECT_NEAR(committed[k], fresh[k], 1e-9 * std::abs(fresh[k]) + 1e-15);

  std::vector<double> fresh_vmv(ev.chip_m().partition().num_tiles(), 0.0);
  ev.chip_m().read_vmv_partials(res.final_profile.p.counts().data(),
                                res.final_profile.q.counts().data(),
                                fresh_vmv.data());
  const auto& committed_vmv = ev.committed_vmv_partials_m();
  ASSERT_EQ(committed_vmv.size(), fresh_vmv.size());
  for (std::size_t k = 0; k < fresh_vmv.size(); ++k)
    EXPECT_NEAR(committed_vmv[k], fresh_vmv[k],
                1e-9 * std::abs(fresh_vmv[k]) + 1e-15);
}

// ---- Readout modes ----------------------------------------------------------

TEST(TiledTwoPhase, PerTileAdcDisablesIncrementalAndTracksExact) {
  util::Rng game_rng(11);
  const game::BimatrixGame g(random_integer_matrix(6, 6, 4, game_rng),
                             random_integer_matrix(6, 6, 4, game_rng),
                             "per-tile-adc");
  const core::TwoPhaseConfig cfg = ideal_config();
  TiledTwoPhaseEvaluator ev(g, 8, cfg,
                            chip_grid(16, 64, ChipReadout::kPerTileAdc),
                            util::Rng(5));
  EXPECT_EQ(ev.incremental(), nullptr);  // per-tile quantisation: full reads

  core::ExactMaxQubo exact(g);
  util::Rng prof_rng(17);
  for (int t = 0; t < 20; ++t) {
    game::QuantizedProfile prof{game::QuantizedStrategy::random(6, 8, prof_rng),
                                game::QuantizedStrategy::random(6, 8,
                                                                prof_rng)};
    // One 16-bit conversion per tile output: error stays within a few LSB
    // of payoff resolution even though every tile quantises separately.
    EXPECT_NEAR(ev.evaluate(prof), exact.evaluate(prof), 0.02);
  }
}

TEST(TiledTwoPhase, AggregationNoisePerturbsOnlyMultiTileGrids) {
  util::Rng game_rng(21);
  const game::BimatrixGame g(random_integer_matrix(6, 6, 4, game_rng),
                             random_integer_matrix(6, 6, 4, game_rng),
                             "agg-noise");
  core::TwoPhaseConfig cfg = ideal_config();
  game::QuantizedProfile prof{game::QuantizedStrategy::pure(6, 1, 8),
                              game::QuantizedStrategy::pure(6, 2, 8)};

  ChipConfig noisy_multi = chip_grid(16, 64);
  noisy_multi.aggregation_noise_rel = 0.002;
  TiledTwoPhaseEvaluator multi(g, 8, cfg, noisy_multi, util::Rng(9));
  ASSERT_GT(multi.chip_m().partition().num_tiles(), 1u);
  const double f0 = multi.evaluate(prof);
  bool varied = false;
  for (int t = 0; t < 20 && !varied; ++t)
    varied = multi.evaluate(prof) != f0;
  EXPECT_TRUE(varied);  // H-tree noise is drawn per read

  ChipConfig noisy_single = chip_grid(1024, 4096);
  noisy_single.aggregation_noise_rel = 0.002;
  TiledTwoPhaseEvaluator single(g, 8, cfg, noisy_single, util::Rng(9));
  ASSERT_EQ(single.chip_m().partition().num_tiles(), 1u);
  const double s0 = single.evaluate(prof);
  for (int t = 0; t < 5; ++t)
    EXPECT_EQ(single.evaluate(prof), s0);  // depth-0 tree: no noise, no draws
}

// ---- Acceptance: 128×128 digital readout bit-identical to ExactMaxQubo ------

TEST(TiledTwoPhase, Digital128ActionGameBitIdenticalToExactOnSaTrajectories) {
  // 128 actions, integer payoffs <= 3, I = 16 (power of two): every quantity
  // on both sides is an exactly-representable rational with denominator I²,
  // so the digital tile readout and the software evaluator must agree to the
  // last bit on every profile of every SA trajectory.
  util::Rng game_rng(0xBEEF);
  const game::BimatrixGame g =
      game::random_integer_game(128, 128, game_rng, 0, 3);
  const std::uint32_t intervals = 16;

  core::TwoPhaseConfig cfg;
  cfg.array.ideal = true;  // fast programming; the digital readout bypasses
                           // the analog path anyway
  TiledTwoPhaseEvaluator tiled(g, intervals, cfg,
                               chip_grid(64, 64, ChipReadout::kIdealDigital),
                               util::Rng(1));
  // 64×64-cell tiles: 4 element rows × 1 element column each.
  EXPECT_EQ(tiled.chip_m().partition().grid_rows(), 32u);
  EXPECT_EQ(tiled.chip_m().partition().grid_cols(), 128u);
  core::ExactMaxQubo exact(g);

  // Direct bit-equality on random profiles.
  util::Rng prof_rng(2);
  for (int t = 0; t < 10; ++t) {
    game::QuantizedProfile prof{
        game::QuantizedStrategy::random(128, intervals, prof_rng),
        game::QuantizedStrategy::random(128, intervals, prof_rng)};
    EXPECT_EQ(tiled.evaluate(prof), exact.evaluate(prof));
  }

  // Full SA trajectories (incremental path on both sides): bitwise-equal
  // objectives force identical acceptance decisions, so the entire
  // trajectory — accepted count, final and best profiles — must coincide.
  core::SaOptions sa;
  sa.iterations = 1500;
  for (const std::uint64_t seed : {0xAAAAull, 0x5555ull}) {
    util::Rng rng_a(seed), rng_b(seed);
    const core::SaRunResult rt =
        core::simulated_annealing(tiled, intervals, sa, rng_a);
    const core::SaRunResult re =
        core::simulated_annealing(exact, intervals, sa, rng_b);
    EXPECT_EQ(rt.final_objective, re.final_objective);
    EXPECT_EQ(rt.best_objective, re.best_objective);
    EXPECT_EQ(rt.accepted, re.accepted);
    EXPECT_EQ(rt.final_profile.p.counts(), re.final_profile.p.counts());
    EXPECT_EQ(rt.final_profile.q.counts(), re.final_profile.q.counts());
  }
}

}  // namespace
}  // namespace cnash::chip
