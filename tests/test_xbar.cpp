#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "xbar/adc.hpp"
#include "xbar/array.hpp"
#include "xbar/energy.hpp"
#include "xbar/mapping.hpp"
#include "xbar/parasitics.hpp"

namespace cnash::xbar {
namespace {

la::Matrix small_payoff() { return la::Matrix{{3, 0}, {1, 2}}; }

TEST(Mapping, GeometryFollowsFig4) {
  // Fig. 4(c): 0.25 x 3 x 0.75 with I = 4, t = 4 needs a 4 x 16 subarray.
  const CrossbarMapping map(la::Matrix{{3}}, 4, 4);
  EXPECT_EQ(map.geometry().total_rows(), 4u);
  EXPECT_EQ(map.geometry().total_cols(), 16u);
}

TEST(Mapping, RejectsNonIntegerAndNegative) {
  EXPECT_THROW(CrossbarMapping(la::Matrix{{1.5}}, 4), std::invalid_argument);
  EXPECT_THROW(CrossbarMapping(la::Matrix{{-1.0}}, 4), std::invalid_argument);
  EXPECT_THROW(CrossbarMapping(la::Matrix{{5}}, 4, 3), std::invalid_argument);
}

TEST(Mapping, DefaultCellsPerElementIsMaxEntry) {
  const CrossbarMapping map(small_payoff(), 4);
  EXPECT_EQ(map.geometry().cells_per_element, 3u);
}

TEST(Mapping, StoredBitsUnaryCode) {
  const CrossbarMapping map(small_payoff(), 2, 3);
  // Element (0,0) = 3: all three cells of every group store 1.
  EXPECT_TRUE(map.stored_bit(0, 0));
  EXPECT_TRUE(map.stored_bit(0, 2));
  // Element (0,1) = 0: nothing stored.
  for (std::size_t c = 6; c < 12; ++c) EXPECT_FALSE(map.stored_bit(0, c));
  // Element (1,0) = 1: first cell of each group only.
  EXPECT_TRUE(map.stored_bit(2, 0));
  EXPECT_FALSE(map.stored_bit(2, 1));
}

TEST(Mapping, AddressRoundTrips) {
  const CrossbarMapping map(small_payoff(), 4, 3);
  const auto ca = map.col_address(4 * 3 + 3 + 1);  // block 1, group 1, cell 1
  EXPECT_EQ(ca.j, 1u);
  EXPECT_EQ(ca.group, 1u);
  EXPECT_EQ(ca.cell, 1u);
  const auto ra = map.row_address(5);
  EXPECT_EQ(ra.i, 1u);
  EXPECT_EQ(ra.row_in_block, 1u);
}

TEST(Mapping, ConductingCellsMatchesFormula) {
  const CrossbarMapping map(small_payoff(), 4, 3);
  // rows_active = (1, 4), groups_active = (3, 2):
  // Σ r_i * g_j * m_ij = 1*3*3 + 1*2*0 + 4*3*1 + 4*2*2 = 9 + 12 + 16 = 37.
  EXPECT_EQ(map.conducting_cells({1, 4}, {3, 2}), 37u);
  EXPECT_THROW(map.conducting_cells({5, 0}, {0, 0}), std::invalid_argument);
}

TEST(Array, IdealReadMatchesExactProduct) {
  const std::uint32_t I = 4;
  CrossbarMapping map(small_payoff(), I);
  ArrayConfig cfg;
  cfg.ideal = true;
  util::Rng rng(1);
  const ProgrammedCrossbar xb(std::move(map), cfg, rng);
  // p = (0.25, 0.75), q = (0.5, 0.5).
  const std::vector<std::uint32_t> rows{1, 3}, groups{2, 2};
  const double value = xb.current_to_value(xb.read_vmv(rows, groups));
  const double exact = la::vmv({0.25, 0.75}, small_payoff(), {0.5, 0.5});
  EXPECT_NEAR(value, exact, 0.01 * exact + 1e-6);
}

TEST(Array, MvReadMatchesMatrixVector) {
  const std::uint32_t I = 4;
  CrossbarMapping map(small_payoff(), I);
  ArrayConfig cfg;
  cfg.ideal = true;
  util::Rng rng(2);
  const ProgrammedCrossbar xb(std::move(map), cfg, rng);
  const std::vector<std::uint32_t> groups{1, 3};  // q = (0.25, 0.75)
  const auto currents = xb.read_mv(groups);
  const la::Vector expected = small_payoff().multiply({0.25, 0.75});
  ASSERT_EQ(currents.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(xb.current_to_value(currents[i]), expected[i],
                0.01 * expected[i] + 1e-6);
}

TEST(Array, PrefixAndPerCellPathsAgreeExactly) {
  CrossbarMapping map(la::Matrix{{2, 1, 3}, {0, 2, 1}}, 3);
  ArrayConfig cfg;  // variability on
  util::Rng rng(3);
  const ProgrammedCrossbar xb(std::move(map), cfg, rng);
  const std::vector<std::uint32_t> rows{2, 1}, groups{1, 3, 2};
  EXPECT_NEAR(xb.read_vmv(rows, groups), xb.read_vmv_percell(rows, groups),
              1e-15);
}

TEST(Array, VariabilityPerturbsButTracksIdeal) {
  CrossbarMapping map(small_payoff(), 8);
  ArrayConfig cfg;
  util::Rng rng(4);
  const ProgrammedCrossbar xb(std::move(map), cfg, rng);
  const std::vector<std::uint32_t> rows{4, 4}, groups{4, 4};
  const double value = xb.current_to_value(xb.read_vmv(rows, groups));
  const double exact = la::vmv({0.5, 0.5}, small_payoff(), {0.5, 0.5});
  EXPECT_NEAR(value, exact, 0.05 * exact);
  EXPECT_NE(value, exact);  // variability must actually do something
}

TEST(Array, FastAndExactSamplingStatisticallyClose) {
  util::Rng rng_fast(5), rng_exact(5);
  ArrayConfig fast_cfg, exact_cfg;
  fast_cfg.fast_sampling = true;
  exact_cfg.fast_sampling = false;
  const la::Matrix payoff{{4, 2}, {1, 3}};
  const ProgrammedCrossbar fast(CrossbarMapping(payoff, 6), fast_cfg, rng_fast);
  const ProgrammedCrossbar exact(CrossbarMapping(payoff, 6), exact_cfg,
                                 rng_exact);
  const std::vector<std::uint32_t> rows{3, 3}, groups{3, 3};
  // Same seed -> same device draws; the two device models agree within ~1 %.
  EXPECT_NEAR(fast.read_vmv(rows, groups), exact.read_vmv(rows, groups),
              0.01 * exact.read_vmv(rows, groups));
}

TEST(Array, ZeroActivationZeroOnCurrent) {
  CrossbarMapping map(small_payoff(), 4);
  ArrayConfig cfg;
  cfg.ideal = true;
  util::Rng rng(6);
  const ProgrammedCrossbar xb(std::move(map), cfg, rng);
  const std::vector<std::uint32_t> none{0, 0};
  EXPECT_NEAR(xb.read_vmv(none, none), 0.0, 1e-12);
}

TEST(Array, BadActivationThrows) {
  CrossbarMapping map(small_payoff(), 4);
  ArrayConfig cfg;
  cfg.ideal = true;
  util::Rng rng(7);
  const ProgrammedCrossbar xb(std::move(map), cfg, rng);
  EXPECT_THROW(xb.read_vmv({5, 0}, {0, 0}), std::invalid_argument);
  EXPECT_THROW(xb.read_vmv({1}, {0, 0}), std::invalid_argument);
}

TEST(Adc, QuantizeReconstructWithinLsb) {
  AdcConfig cfg;
  cfg.bits = 8;
  cfg.full_scale_current = 1e-3;
  const Adc adc(cfg);
  util::Rng rng(8);
  for (double i : {1e-5, 3.3e-4, 9.9e-4}) {
    const double rec = adc.convert(i, rng);
    EXPECT_NEAR(rec, i, adc.lsb_current());
  }
}

TEST(Adc, ClampsOutOfRange) {
  const Adc adc({6, 1e-3, 0.0, 10e-9, 2e-12});
  util::Rng rng(9);
  EXPECT_EQ(adc.quantize(2e-3, rng), adc.max_code());
  EXPECT_EQ(adc.quantize(-1.0, rng), 0u);
}

TEST(Adc, MonotonicCodes) {
  const Adc adc({8, 1e-3, 0.0, 10e-9, 2e-12});
  util::Rng rng(10);
  std::uint32_t prev = 0;
  for (double i = 0.0; i <= 1e-3; i += 1e-5) {
    const auto code = adc.quantize(i, rng);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST(Adc, RejectsBadConfig) {
  EXPECT_THROW(Adc({0, 1e-3, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(Adc({8, -1.0, 0, 0, 0}), std::invalid_argument);
}

TEST(Wire, DelayGrowsQuadratically) {
  const WireModel w;
  const double d64 = w.settle_time(64);
  const double d128 = w.settle_time(128);
  EXPECT_GT(d128, 2.0 * d64);  // super-linear (RC of line grows with L²)
  EXPECT_LT(d128, 4.5 * d64);
}

TEST(Wire, IrDropLinearInCurrent) {
  const WireModel w;
  EXPECT_DOUBLE_EQ(w.ir_drop(100, 2e-3), 2.0 * w.ir_drop(100, 1e-3));
}

TEST(Wire, MaxCellsForDropConsistent) {
  const WireModel w;
  const double per_cell = 1e-6;
  const std::size_t n = w.max_cells_for_drop(0.05, per_cell);
  EXPECT_LE(w.ir_drop(n, per_cell * n), 0.055);
}

TEST(Energy, BreakdownSumsAndScales) {
  const EnergyModel e;
  const auto rd = e.array_read(1e-3, 64, 256, 8);
  EXPECT_GT(rd.crossbar_j, 0.0);
  EXPECT_DOUBLE_EQ(rd.total(),
                   rd.crossbar_j + rd.lines_j + rd.adc_j + rd.wta_j + rd.logic_j);
  const auto rd2 = e.array_read(2e-3, 64, 256, 8);
  EXPECT_DOUBLE_EQ(rd2.crossbar_j, 2.0 * rd.crossbar_j);
}

TEST(Energy, WtaTreeCountsCells) {
  const EnergyModel e;
  EXPECT_DOUBLE_EQ(e.wta_tree(4), 3.0 * e.params().wta_cell_energy_j);
  EXPECT_DOUBLE_EQ(e.wta_tree(1), 0.0);
}

}  // namespace
}  // namespace cnash::xbar
