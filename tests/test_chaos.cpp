// Chaos scenarios against an in-process NashServer (the scripted twin of
// scripts/chaos_smoke.sh, which attacks a live binary). Contracts:
//   * a malformed-line flood gets structured {"ok":false,...} errors and
//     leaves every connection usable;
//   * slow-loris writers (a request dribbled one byte at a time across many
//     simultaneously-incomplete connections) all complete once their final
//     byte lands — no slow writer blocks the poll loop;
//   * a mid-request disconnect storm (half-written lines, peers vanishing
//     before their response) leaves the server coherent: later requests are
//     served and the dead fds are reaped;
//   * with an injected write-stall fault plan (every flush sends at most one
//     byte) responses still arrive intact via POLLOUT-driven drains;
//   * with an injected disconnect fault plan every response tears the
//     connection down — clients see EOF, the server counts the injections
//     and survives;
//   * degraded (deadline) and fallback (resilient) reports are never
//     inserted into the solution cache: the identical follow-up request is
//     solved again, not replayed.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "game/games.hpp"
#include "serve/line_client.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace cnash::serve {
namespace {

class ServerFixture {
 public:
  explicit ServerFixture(ServeOptions options = {}) : server_(options) {
    server_.start();
    thread_ = std::thread([this] { server_.run(); });
  }
  ~ServerFixture() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    server_.request_stop();
    thread_.join();
  }

  NashServer& server() { return server_; }
  std::uint16_t port() const { return server_.port(); }

 private:
  NashServer server_;
  std::thread thread_;
};

const char kStatusLine[] = "{\"method\":\"status\",\"id\":7}";

std::string tiny_solve_line(int id, std::uint64_t seed) {
  return "{\"method\":\"solve\",\"id\":" + std::to_string(id) +
         ",\"game\":{\"name\":\"mp\",\"m\":[[1,-1],[-1,1]],"
         "\"n\":[[-1,1],[1,-1]]},\"backend\":\"exact-sa\",\"runs\":2,"
         "\"iterations\":80,\"seed\":" + std::to_string(seed) + "}";
}

util::Json request(LineClient& client, const std::string& line) {
  EXPECT_TRUE(client.send_line(line));
  std::string response;
  EXPECT_TRUE(client.recv_line(response));
  return util::Json::parse(response);
}

TEST(Chaos, MalformedFloodGetsStructuredErrorsOnUsableConnections) {
  ServerFixture fixture;
  const char* bad_lines[] = {
      "{not json at all",
      "{\"method\":42}",
      "{\"method\":\"no-such-method\",\"id\":3}",
      "{\"method\":\"solve\",\"id\":4,\"game\":{\"m\":[[1]],\"n\":[[1]]},"
      "\"runs\":-5}",
  };
  const std::size_t flood = 32;
  for (std::size_t i = 0; i < flood; ++i) {
    LineClient client;
    ASSERT_TRUE(client.connect_to(fixture.port())) << std::strerror(errno);
    const util::Json error = request(client, bad_lines[i % 4]);
    ASSERT_FALSE(error.at("ok").as_bool()) << "flood line " << i;
    EXPECT_TRUE(error.find("error")) << "unstructured error, line " << i;
    EXPECT_FALSE(error.at("error").at("message").as_string().empty());
    // The same socket still serves a good request afterwards.
    const util::Json status = request(client, kStatusLine);
    EXPECT_TRUE(status.at("ok").as_bool()) << "connection dead after error";
  }
  LineClient probe;
  ASSERT_TRUE(probe.connect_to(fixture.port()));
  const util::Json stats = request(probe, "{\"method\":\"stats\"}");
  EXPECT_GE(stats.at("stats").at("served").at("errors").as_number(),
            static_cast<double>(flood));
}

TEST(Chaos, SlowLorisDribbledRequestsAllComplete) {
  ServerFixture fixture;
  const std::size_t held = 48;
  std::vector<LineClient> conns(held);
  for (std::size_t i = 0; i < held; ++i)
    ASSERT_TRUE(conns[i].connect_to(fixture.port())) << std::strerror(errno);

  // Dribble one byte per connection per round: all connections sit incomplete
  // in the server's input buffers for the whole ramp.
  const std::string line = std::string(kStatusLine) + "\n";
  for (std::size_t pos = 0; pos < line.size(); ++pos)
    for (std::size_t i = 0; i < held; ++i)
      ASSERT_TRUE(conns[i].send_raw(line.data() + pos, 1))
          << "byte " << pos << " conn " << i;

  for (std::size_t i = 0; i < held; ++i) {
    std::string response;
    ASSERT_TRUE(conns[i].recv_line(response)) << "conn " << i;
    EXPECT_TRUE(util::Json::parse(response).at("ok").as_bool()) << response;
  }
}

TEST(Chaos, DisconnectStormLeavesTheServerCoherent) {
  ServerFixture fixture;
  for (std::size_t i = 0; i < 64; ++i) {
    LineClient client;
    ASSERT_TRUE(client.connect_to(fixture.port())) << std::strerror(errno);
    const std::string line = tiny_solve_line(static_cast<int>(i), 1000 + i);
    if (i % 2) {
      // Half a request, then vanish (destructor closes the socket).
      ASSERT_TRUE(client.send_raw(line.data(), line.size() / 2));
    } else {
      // A full solve whose response lands on a closed peer.
      ASSERT_TRUE(client.send_line(line));
    }
  }
  // The server survives and still serves: a fresh solve round-trips.
  LineClient probe;
  ASSERT_TRUE(probe.connect_to(fixture.port()));
  const util::Json solved = request(probe, tiny_solve_line(99, 424242));
  ASSERT_TRUE(solved.at("ok").as_bool());
  EXPECT_EQ(solved.at("report").at("backend").as_string(), "exact-sa");
}

TEST(Chaos, WriteStallFaultStillDeliversIntactResponses) {
  ServeOptions options;
  options.fault.seed = 7;
  options.fault.write_stall_rate = 1.0;  // every flush sends at most one byte
  ServerFixture fixture(options);

  LineClient client;
  ASSERT_TRUE(client.connect_to(fixture.port()));
  // A solve response is kilobytes: with every flush stalled it only reaches
  // the client through POLLOUT-driven drains, one stalled event at a time.
  const util::Json solved = request(client, tiny_solve_line(1, 5));
  ASSERT_TRUE(solved.at("ok").as_bool());
  EXPECT_EQ(solved.at("report").at("samples").size(), 2u);

  const util::Json stats = request(client, "{\"method\":\"stats\"}");
  EXPECT_GT(stats.at("stats").at("served").at("write_stalls").as_number(),
            0.0);
}

TEST(Chaos, InjectedDisconnectsTearConnectionsDownVisibly) {
  ServeOptions options;
  options.fault.seed = 11;
  options.fault.disconnect_rate = 1.0;  // every response aborts the connection
  ServerFixture fixture(options);

  for (int i = 0; i < 8; ++i) {
    LineClient client;
    ASSERT_TRUE(client.connect_to(fixture.port()));
    ASSERT_TRUE(client.send_line(kStatusLine));
    std::string response;
    EXPECT_FALSE(client.recv_line(response)) << "response survived the fault";
  }
  fixture.stop();  // single-threaded access to the counters from here on
  EXPECT_EQ(fixture.server().served_stats().injected_disconnects, 8u);
}

TEST(Chaos, DegradedAndFallbackReportsAreNeverCached) {
  ServeOptions options;
  options.service_threads = 2;
  ServerFixture fixture(options);
  LineClient client;
  ASSERT_TRUE(client.connect_to(fixture.port()));

  // A 100% tile-fault resilient solve: every unit falls back to exact-sa.
  const std::string resilient_line =
      "{\"method\":\"solve\",\"id\":1,\"game\":{\"name\":\"mp\","
      "\"m\":[[1,-1],[-1,1]],\"n\":[[-1,1],[1,-1]]},\"backend\":\"resilient\","
      "\"primary\":\"hardware-sa-tiled\",\"runs\":4,\"iterations\":200,"
      "\"seed\":7,\"fault\":{\"seed\":11,\"tile_rate\":1.0}}";
  for (int round = 0; round < 2; ++round) {
    const util::Json solved = request(client, resilient_line);
    ASSERT_TRUE(solved.at("ok").as_bool()) << "round " << round;
    EXPECT_EQ(solved.at("report").at("fallback_count").as_number(), 4.0);
  }

  // A deadline solve degraded mid-flight (64 single-lane heavy units on a
  // 2-worker pool cannot finish in a quarter second).
  const std::string deadline_line =
      "{\"method\":\"solve\",\"id\":2,\"game\":{\"name\":\"mp\","
      "\"m\":[[1,-1],[-1,1]],\"n\":[[-1,1],[1,-1]]},\"backend\":\"exact-sa\","
      "\"runs\":64,\"iterations\":1000000,\"seed\":3,\"batch_lanes\":1,"
      "\"deadline_s\":0.25}";
  for (int round = 0; round < 2; ++round) {
    const util::Json solved = request(client, deadline_line);
    ASSERT_TRUE(solved.at("ok").as_bool()) << "round " << round;
    EXPECT_TRUE(solved.at("report").at("degraded").as_bool())
        << "round " << round;
  }

  // Neither report entered the cache: the repeats were re-solved, and all
  // four responses were counted as uncached.
  const util::Json stats = request(client, "{\"method\":\"stats\"}");
  const util::Json& served = stats.at("stats").at("served");
  EXPECT_EQ(served.at("cache_hits").as_number(), 0.0);
  EXPECT_EQ(served.at("uncached_reports").as_number(), 4.0);
  EXPECT_EQ(stats.at("stats").at("cache").at("insertions").as_number(), 0.0);
  EXPECT_EQ(served.at("jobs_submitted").as_number(), 4.0);
}

}  // namespace
}  // namespace cnash::serve
