#include <gtest/gtest.h>

#include <cmath>

#include "game/games.hpp"
#include "game/verify.hpp"
#include "qubo/dwave_proxy.hpp"
#include "qubo/squbo_builder.hpp"
#include "util/rng.hpp"

namespace cnash::qubo {
namespace {

Bits encode_pure(const SQubo& sq, std::size_t i, std::size_t j) {
  Bits x(sq.num_vars(), 0);
  x[i] = 1;
  x[sq.game().num_actions1() + j] = 1;
  return x;
}

TEST(SQubo, VariableLayoutCounts) {
  SQuboOptions opts;
  opts.style = SlackStyle::kAggregate;
  opts.level_bits = 4;
  opts.slack_bits = 3;
  const SQubo sq(game::battle_of_sexes(), opts);
  // 2 + 2 strategies + 4 + 4 level bits + 3 + 3 slack bits.
  EXPECT_EQ(sq.num_vars(), 2u + 2 + 4 + 4 + 3 + 3);

  SQuboOptions per_row = opts;
  per_row.style = SlackStyle::kPerRow;
  const SQubo sq2(game::battle_of_sexes(), per_row);
  // Slacks per row/column: 2*3 + 2*3.
  EXPECT_EQ(sq2.num_vars(), 2u + 2 + 4 + 4 + 6 + 6);
}

TEST(SQubo, DecodeReadsStrategiesAndLevels) {
  const SQubo sq(game::battle_of_sexes());
  Bits x = encode_pure(sq, 0, 1);
  const auto d = sq.decode(x);
  EXPECT_TRUE(d.valid_strategies);
  EXPECT_DOUBLE_EQ(d.p[0], 1.0);
  EXPECT_DOUBLE_EQ(d.q[1], 1.0);
}

TEST(SQubo, InvalidStrategiesFlagged) {
  const SQubo sq(game::battle_of_sexes());
  Bits x(sq.num_vars(), 0);  // no action chosen
  EXPECT_FALSE(sq.decode(x).valid_strategies);
  x[0] = x[1] = 1;  // two actions for player 1
  x[2] = 1;
  EXPECT_FALSE(sq.decode(x).valid_strategies);
}

TEST(SQubo, SimplexPenaltyDiscouragesInvalidStates) {
  const SQubo sq(game::battle_of_sexes());
  const Bits valid = encode_pure(sq, 0, 0);
  Bits invalid(sq.num_vars(), 0);  // all-zero violates both simplex penalties
  EXPECT_LT(sq.energy(valid), sq.energy(invalid));
}

TEST(SQubo, PureNashHasLowerEnergyThanNonNash) {
  // For BoS, (0,0) and (1,1) are NE; (0,1)/(1,0) are not. With the level and
  // slack bits at their best settings, the NE assignments should beat the
  // non-NE ones. Search over all level/slack bits for each strategy pair.
  SQuboOptions opts;
  opts.style = SlackStyle::kAggregate;
  opts.level_bits = 2;
  opts.slack_bits = 2;
  const SQubo sq(game::battle_of_sexes(), opts);
  const std::size_t strategy_bits = 4;
  const std::size_t aux_bits = sq.num_vars() - strategy_bits;
  ASSERT_LE(aux_bits, 12u);
  auto best_energy_for = [&](std::size_t i, std::size_t j) {
    double best = 1e100;
    for (std::uint64_t aux = 0; aux < (1ull << aux_bits); ++aux) {
      Bits x = encode_pure(sq, i, j);
      for (std::size_t b = 0; b < aux_bits; ++b)
        x[strategy_bits + b] = (aux >> b) & 1;
      best = std::min(best, sq.energy(x));
    }
    return best;
  };
  const double ne1 = best_energy_for(0, 0);
  const double ne2 = best_energy_for(1, 1);
  const double non1 = best_energy_for(0, 1);
  const double non2 = best_energy_for(1, 0);
  EXPECT_LT(ne1, non1);
  EXPECT_LT(ne1, non2);
  EXPECT_LT(ne2, non1);
  EXPECT_LT(ne2, non2);
}

TEST(SQubo, OriginalObjectiveZeroAtPureNash) {
  const SQubo sq(game::prisoners_dilemma());
  // (Defect, Defect) is the unique NE: original objective (Eq. 3 rewritten
  // with α = max(Mq), β = max(Nᵀp)) equals 0 there.
  const Bits x = encode_pure(sq, 1, 1);
  EXPECT_NEAR(sq.original_objective(x), 0.0, 1e-12);
  // Not zero at the non-equilibrium (C, C).
  const Bits y = encode_pure(sq, 0, 0);
  EXPECT_LT(sq.original_objective(y), -1e-9);
}

TEST(DWaveProxy, ConfigsDiffer) {
  const auto q2000 = dwave_2000q6_config();
  const auto adv = dwave_advantage41_config();
  EXPECT_GT(q2000.schedule.sweeps, adv.schedule.sweeps);
  EXPECT_GT(q2000.time_per_sample_s, adv.time_per_sample_s);
  EXPECT_LT(q2000.q_noise_rel, adv.q_noise_rel);
}

TEST(DWaveProxy, FindsPureNashOnBattleOfSexes) {
  util::Rng rng(11);
  const game::BimatrixGame g = game::battle_of_sexes();
  const DWaveProxy proxy(g, dwave_2000q6_config());
  const auto samples = proxy.run(50, rng);
  ASSERT_EQ(samples.size(), 50u);
  int nash = 0;
  for (const auto& s : samples) {
    if (s.valid && game::is_nash_equilibrium(g, s.p, s.q, 1e-6)) ++nash;
  }
  // The well-converged 2000Q proxy should find pure NE in most reads.
  EXPECT_GT(nash, 35);
}

TEST(DWaveProxy, OnlyPureStrategiesEverReturned) {
  util::Rng rng(13);
  const game::BimatrixGame g = game::bird_game();
  const DWaveProxy proxy(g, dwave_advantage41_config());
  for (const auto& s : proxy.run(30, rng)) {
    for (double v : s.p) EXPECT_TRUE(v == 0.0 || v == 1.0);
    for (double v : s.q) EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(DWaveProxy, ElapsedTimeScalesWithReads) {
  const DWaveProxy proxy(game::battle_of_sexes(), dwave_advantage41_config());
  EXPECT_DOUBLE_EQ(proxy.elapsed_seconds(1000),
                   1000 * proxy.config().time_per_sample_s);
}

}  // namespace
}  // namespace cnash::qubo
