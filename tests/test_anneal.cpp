#include <gtest/gtest.h>

#include "core/anneal.hpp"
#include "game/games.hpp"
#include "game/verify.hpp"
#include "util/rng.hpp"

namespace cnash::core {
namespace {

TEST(Anneal, FindsEquilibriumOfBattleOfSexesExact) {
  ExactMaxQubo f(game::battle_of_sexes());
  util::Rng rng(71);
  SaOptions opts;
  opts.iterations = 4000;
  int successes = 0;
  for (int run = 0; run < 20; ++run) {
    const auto res = simulated_annealing(f, 12, opts, rng);
    if (game::is_nash_equilibrium(game::battle_of_sexes(),
                                  res.final_profile.p.to_distribution(),
                                  res.final_profile.q.to_distribution(), 1e-9))
      ++successes;
  }
  EXPECT_GE(successes, 18);
}

TEST(Anneal, ObjectiveDecreasesOnAverage) {
  ExactMaxQubo f(game::bird_game());
  util::Rng rng(72);
  SaOptions opts;
  opts.iterations = 5000;
  opts.t_start_rel = 0.3;  // warm start: some uphill acceptance must occur
  const auto res = simulated_annealing(f, 12, opts, rng);
  EXPECT_LE(res.best_objective, res.final_objective + 1e-12);
  EXPECT_LE(res.final_objective, 0.5);  // must end far below random (~1+)
  EXPECT_EQ(res.iterations, opts.iterations);
  EXPECT_GT(res.accepted, 0u);
}

TEST(Anneal, BestTracksMinimumSeen) {
  ExactMaxQubo f(game::battle_of_sexes());
  util::Rng rng(73);
  SaOptions opts;
  opts.iterations = 500;
  const auto res = simulated_annealing(f, 12, opts, rng);
  EXPECT_LE(res.best_objective, res.final_objective);
  EXPECT_NEAR(f.evaluate(res.best_profile), res.best_objective, 1e-9);
}

TEST(Anneal, FromExplicitInitialState) {
  ExactMaxQubo f(game::battle_of_sexes());
  util::Rng rng(74);
  game::QuantizedProfile init{
      game::QuantizedStrategy::pure(2, 0, 12),
      game::QuantizedStrategy::pure(2, 0, 12)};  // already an NE
  SaOptions opts;
  opts.iterations = 1;
  const auto res = simulated_annealing_from(f, init, opts, rng);
  EXPECT_LE(res.best_objective, 1e-9);
}

TEST(Anneal, ZeroIterationsRejected) {
  ExactMaxQubo f(game::battle_of_sexes());
  util::Rng rng(75);
  SaOptions opts;
  opts.iterations = 0;
  EXPECT_THROW(simulated_annealing(f, 12, opts, rng), std::invalid_argument);
}

TEST(Anneal, PreservesSimplexInvariant) {
  ExactMaxQubo f(game::modified_prisoners_dilemma());
  util::Rng rng(76);
  SaOptions opts;
  opts.iterations = 2000;
  const auto res = simulated_annealing(f, 60, opts, rng);
  std::uint32_t total_p = 0, total_q = 0;
  for (auto c : res.final_profile.p.counts()) total_p += c;
  for (auto c : res.final_profile.q.counts()) total_q += c;
  EXPECT_EQ(total_p, 60u);
  EXPECT_EQ(total_q, 60u);
}

TEST(Anneal, FindsMixedEquilibriumOfMatchingPennies) {
  // Matching pennies has no pure NE: SA must land on the mixed point.
  ExactMaxQubo f(game::matching_pennies());
  util::Rng rng(77);
  SaOptions opts;
  opts.iterations = 6000;
  int successes = 0;
  for (int run = 0; run < 10; ++run) {
    const auto res = simulated_annealing(f, 8, opts, rng);
    if (game::is_nash_equilibrium(game::matching_pennies(),
                                  res.final_profile.p.to_distribution(),
                                  res.final_profile.q.to_distribution(), 1e-9))
      ++successes;
  }
  EXPECT_GE(successes, 8);
}

}  // namespace
}  // namespace cnash::core
