// SolveReport ↔ JSON (core/report_json.hpp) and the util::Json document type
// underneath it. Contracts:
//   * round trip is lossless — every double returns bit-identical (including
//     NaN regrets / best objectives via the null mapping) and quantized
//     profiles survive;
//   * the serialized form is stable — a golden file in tests/data/ catches
//     accidental schema or formatting drift (the serving cache's
//     byte-identical-replay guarantee rides on deterministic rendering);
//   * the parser rejects malformed documents with exact offsets and the
//     report deserializer rejects schema violations.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/report_json.hpp"
#include "core/service.hpp"
#include "game/games.hpp"
#include "util/json.hpp"

namespace cnash::core {
namespace {

bool same_bits(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  // All NaNs compare equal here: JSON null cannot carry a payload, so the
  // round trip guarantees "a NaN", not a specific one.
  if (std::isnan(a) && std::isnan(b)) return true;
  return ba == bb;
}

/// The hand-built report behind the golden file: dyadic values (exact in
/// decimal), one sample with a quantized profile, one invalid sample with a
/// NaN regret.
SolveReport golden_report() {
  SolveReport report;
  report.backend = "hardware-sa";
  report.game_name = "golden game";
  SolveSample good;
  good.p = {0.25, 0.75};
  good.q = {1.0, 0.0};
  good.objective = 0.125;
  good.valid = true;
  good.is_nash = true;
  good.regret = 0.0078125;
  good.fallback = true;  // exercises the resilient-path sample flag
  good.profile = game::QuantizedProfile{
      game::QuantizedStrategy(std::vector<std::uint32_t>{1, 3}, 4),
      game::QuantizedStrategy(std::vector<std::uint32_t>{4, 0}, 4)};
  SolveSample bad;
  bad.p = {0.5, 0.5};
  bad.q = {0.5, 0.5};
  bad.objective = 1.5;
  bad.valid = false;
  bad.is_nash = false;
  bad.regret = std::numeric_limits<double>::quiet_NaN();
  report.samples = {good, bad};
  report.nash_count = 1;
  report.valid_count = 1;
  report.best_objective = 0.125;
  report.modeled_time_s = 1.25e-06;
  report.wall_clock_s = 0.03125;
  report.degraded = true;  // exercises the robustness accounting fields
  report.units_total = 4;
  report.units_completed = 3;
  report.fallback_count = 1;
  return report;
}

void expect_reports_equal(const SolveReport& a, const SolveReport& b) {
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_EQ(a.game_name, b.game_name);
  EXPECT_EQ(a.nash_count, b.nash_count);
  EXPECT_EQ(a.valid_count, b.valid_count);
  EXPECT_TRUE(same_bits(a.best_objective, b.best_objective));
  EXPECT_TRUE(same_bits(a.modeled_time_s, b.modeled_time_s));
  EXPECT_TRUE(same_bits(a.wall_clock_s, b.wall_clock_s));
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.units_total, b.units_total);
  EXPECT_EQ(a.units_completed, b.units_completed);
  EXPECT_EQ(a.fallback_count, b.fallback_count);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const SolveSample& sa = a.samples[i];
    const SolveSample& sb = b.samples[i];
    ASSERT_EQ(sa.p.size(), sb.p.size());
    for (std::size_t j = 0; j < sa.p.size(); ++j)
      EXPECT_TRUE(same_bits(sa.p[j], sb.p[j])) << "sample " << i << " p " << j;
    ASSERT_EQ(sa.q.size(), sb.q.size());
    for (std::size_t j = 0; j < sa.q.size(); ++j)
      EXPECT_TRUE(same_bits(sa.q[j], sb.q[j])) << "sample " << i << " q " << j;
    EXPECT_TRUE(same_bits(sa.objective, sb.objective)) << "sample " << i;
    EXPECT_EQ(sa.valid, sb.valid) << "sample " << i;
    EXPECT_EQ(sa.is_nash, sb.is_nash) << "sample " << i;
    EXPECT_TRUE(same_bits(sa.regret, sb.regret)) << "sample " << i;
    EXPECT_EQ(sa.fallback, sb.fallback) << "sample " << i;
    EXPECT_EQ(sa.profile.has_value(), sb.profile.has_value()) << "sample " << i;
    if (sa.profile && sb.profile) {
      EXPECT_EQ(*sa.profile, *sb.profile);
    }
  }
}

TEST(ReportJson, RoundTripIsLossless) {
  const SolveReport report = golden_report();
  const std::string wire = report_to_json(report).dump();
  const SolveReport back = report_from_json(util::Json::parse(wire));
  expect_reports_equal(report, back);
  // Re-serialization is byte-identical (deterministic rendering).
  EXPECT_EQ(report_to_json(back).dump(), wire);
}

TEST(ReportJson, RoundTripsARealSolverReport) {
  SolveRequest req(game::battle_of_sexes());
  req.backend = "hardware-sa";
  req.runs = 4;
  req.seed = 7;
  req.sa.iterations = 400;
  const SolveReport report =
      SolverRegistry::global().at("hardware-sa").solve(req);
  ASSERT_EQ(report.samples.size(), 4u);
  ASSERT_TRUE(report.samples[0].profile.has_value());

  const SolveReport back =
      report_from_json(util::Json::parse(report_to_json(report).dump()));
  expect_reports_equal(report, back);
  // The stable dedup keys (quantized profiles) survive the round trip.
  for (std::size_t i = 0; i < report.samples.size(); ++i)
    EXPECT_EQ(report.samples[i].key(), back.samples[i].key());
}

TEST(ReportJson, GoldenFileStaysStable) {
  const std::string path =
      std::string(CNASH_SOURCE_DIR) + "/tests/data/solve_report_golden.json";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::ostringstream text;
  text << in.rdbuf();

  // Serialize the hand-built report: must match the checked-in bytes.
  EXPECT_EQ(report_to_json(golden_report()).pretty() + "\n", text.str())
      << "solve_report JSON schema or formatting drifted; if intentional, "
         "regenerate tests/data/solve_report_golden.json";

  // And the golden bytes parse back into the same report.
  expect_reports_equal(golden_report(),
                       report_from_json(util::Json::parse(text.str())));
}

TEST(ReportJson, RejectsSchemaViolations) {
  const SolveReport report = golden_report();
  util::Json json = report_to_json(report);

  util::Json no_backend = util::Json::parse(json.dump());
  no_backend.set("backend", util::Json::null());
  EXPECT_THROW(report_from_json(no_backend), util::JsonError);

  // Profile ticks that do not sum to the interval count.
  util::Json bad_profile = util::Json::parse(
      R"({"backend":"b","game":"g","nash_count":0,"valid_count":0,
          "best_objective":0,"modeled_time_s":0,"wall_clock_s":0,
          "samples":[{"p":[1.0],"q":[1.0],"objective":0,"valid":true,
                      "is_nash":false,"regret":0,
                      "profile":{"intervals":4,"p":[1],"q":[4]}}]})");
  EXPECT_THROW(report_from_json(bad_profile), util::JsonError);
}

TEST(Json, ParserHandlesEscapesAndNesting) {
  const util::Json v = util::Json::parse(
      R"({"s":"a\"b\\c\ndAé","arr":[1,-2.5e3,true,false,null],"o":{}})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\nd" "A" "\xc3\xa9");
  EXPECT_EQ(v.at("arr").size(), 5u);
  EXPECT_EQ(v.at("arr").at(std::size_t{1}).as_number(), -2500.0);
  EXPECT_TRUE(v.at("arr").at(std::size_t{4}).is_null());
  EXPECT_TRUE(v.at("o").is_object());
  // Dump → parse → dump is a fixpoint.
  EXPECT_EQ(util::Json::parse(v.dump()).dump(), v.dump());
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(util::Json::parse(""), util::JsonError);
  EXPECT_THROW(util::Json::parse("{"), util::JsonError);
  EXPECT_THROW(util::Json::parse("{\"a\":1,}"), util::JsonError);
  EXPECT_THROW(util::Json::parse("[1 2]"), util::JsonError);
  EXPECT_THROW(util::Json::parse("nul"), util::JsonError);
  EXPECT_THROW(util::Json::parse("1.2.3"), util::JsonError);
  EXPECT_THROW(util::Json::parse("\"unterminated"), util::JsonError);
  EXPECT_THROW(util::Json::parse("{} trailing"), util::JsonError);
  try {
    util::Json::parse("[true, xyz]");
    FAIL();
  } catch (const util::JsonError& e) {
    EXPECT_EQ(e.offset(), 7u);  // points at the bad token
  }
  // Depth bomb: fails cleanly instead of blowing the stack.
  EXPECT_THROW(util::Json::parse(std::string(5000, '[')), util::JsonError);
}

TEST(Json, NumbersRenderWithRoundTripPrecision) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-300, -0.0, 12345.0,
                         std::numeric_limits<double>::min()}) {
    const std::string text = util::Json::number(v).dump();
    EXPECT_TRUE(same_bits(util::Json::parse(text).as_number(), v)) << text;
  }
  EXPECT_EQ(util::Json::number(std::nan("")).dump(), "null");
  EXPECT_EQ(util::Json::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

}  // namespace
}  // namespace cnash::core
