#include <gtest/gtest.h>

#include <algorithm>

#include "game/games.hpp"
#include "game/random_games.hpp"
#include "game/strategy.hpp"
#include "game/support_enum.hpp"
#include "game/verify.hpp"
#include "util/rng.hpp"

namespace cnash::game {
namespace {

bool contains(const std::vector<Equilibrium>& eqs, const la::Vector& p,
              const la::Vector& q, double tol = 1e-6) {
  return std::any_of(eqs.begin(), eqs.end(), [&](const Equilibrium& e) {
    return e.matches(p, q, tol);
  });
}

TEST(SupportEnum, BattleOfSexesFindsAllThree) {
  const auto eqs = all_equilibria(battle_of_sexes());
  ASSERT_EQ(eqs.size(), 3u);
  EXPECT_TRUE(contains(eqs, {1, 0}, {1, 0}));
  EXPECT_TRUE(contains(eqs, {0, 1}, {0, 1}));
  EXPECT_TRUE(contains(eqs, {2.0 / 3, 1.0 / 3}, {1.0 / 3, 2.0 / 3}));
  // Exactly one is mixed.
  EXPECT_EQ(std::count_if(eqs.begin(), eqs.end(),
                          [](const Equilibrium& e) { return !e.pure; }),
            1);
}

TEST(SupportEnum, PrisonersDilemmaUnique) {
  const auto eqs = all_equilibria(prisoners_dilemma());
  ASSERT_EQ(eqs.size(), 1u);
  EXPECT_TRUE(contains(eqs, {0, 1}, {0, 1}));
  EXPECT_TRUE(eqs[0].pure);
}

TEST(SupportEnum, MatchingPenniesUniqueMixed) {
  const auto eqs = all_equilibria(matching_pennies());
  ASSERT_EQ(eqs.size(), 1u);
  EXPECT_TRUE(contains(eqs, {0.5, 0.5}, {0.5, 0.5}));
  EXPECT_FALSE(eqs[0].pure);
}

TEST(SupportEnum, RockPaperScissorsUniform) {
  const auto eqs = all_equilibria(rock_paper_scissors());
  ASSERT_EQ(eqs.size(), 1u);
  const double third = 1.0 / 3;
  EXPECT_TRUE(contains(eqs, {third, third, third}, {third, third, third}));
}

TEST(SupportEnum, ChickenHasThree) {
  const auto eqs = all_equilibria(chicken());
  EXPECT_EQ(eqs.size(), 3u);
}

TEST(SupportEnum, StagHuntHasThree) {
  const auto eqs = all_equilibria(stag_hunt());
  EXPECT_EQ(eqs.size(), 3u);
}

TEST(SupportEnum, CoordinationCountIs2PowNMinus1) {
  // Distinct-diagonal coordination: every support pair (S,S) yields one NE.
  for (std::size_t n : {2u, 3u, 4u}) {
    const auto eqs = all_equilibria(coordination(n));
    EXPECT_EQ(eqs.size(), (1u << n) - 1) << "n=" << n;
  }
}

TEST(SupportEnum, BirdGameSevenEquilibria) {
  const auto result = support_enumeration(bird_game());
  ASSERT_EQ(result.equilibria.size(), 7u);
  const auto& eqs = result.equilibria;
  EXPECT_TRUE(contains(eqs, {1, 0, 0}, {1, 0, 0}));
  EXPECT_TRUE(contains(eqs, {0, 1, 0}, {0, 1, 0}));
  EXPECT_TRUE(contains(eqs, {0, 0, 1}, {0, 0, 1}));
  EXPECT_TRUE(contains(eqs, {0.5, 0.5, 0}, {0.5, 0.5, 0}));
  EXPECT_TRUE(contains(eqs, {1.0 / 3, 0, 2.0 / 3}, {1.0 / 3, 0, 2.0 / 3}));
  EXPECT_TRUE(contains(eqs, {0, 1.0 / 3, 2.0 / 3}, {0, 1.0 / 3, 2.0 / 3}));
  EXPECT_TRUE(contains(eqs, {0.25, 0.25, 0.5}, {0.25, 0.25, 0.5}));
  // 3 pure + 4 mixed.
  EXPECT_EQ(std::count_if(eqs.begin(), eqs.end(),
                          [](const Equilibrium& e) { return e.pure; }),
            3);
}

TEST(SupportEnum, ModifiedPrisonersDilemmaThirtyOne) {
  const auto eqs = all_equilibria(modified_prisoners_dilemma());
  EXPECT_EQ(eqs.size(), 31u);
  // 5 pure (focused ventures), 26 mixed (uniform on every venture subset).
  EXPECT_EQ(std::count_if(eqs.begin(), eqs.end(),
                          [](const Equilibrium& e) { return e.pure; }),
            5);
  // Defect and spite actions never appear in any equilibrium support.
  for (const auto& e : eqs) {
    for (std::size_t a = 5; a < 8; ++a) {
      EXPECT_NEAR(e.p[a], 0.0, 1e-9);
      EXPECT_NEAR(e.q[a], 0.0, 1e-9);
    }
  }
}

TEST(SupportEnum, AllEquilibriaOnPaperGridI12) {
  // Every benchmark equilibrium must be representable at I=12 so the C-Nash
  // grid can express it exactly.
  for (const auto& inst : paper_benchmarks()) {
    for (const auto& e : all_equilibria(inst.game)) {
      EXPECT_TRUE(QuantizedStrategy::representable(e.p, inst.intervals))
          << inst.game.name();
      EXPECT_TRUE(QuantizedStrategy::representable(e.q, inst.intervals))
          << inst.game.name();
    }
  }
}

TEST(SupportEnum, EverySolutionVerifies) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const BimatrixGame g = random_game(3, 3, rng);
    for (const auto& e : all_equilibria(g))
      EXPECT_TRUE(is_nash_equilibrium(g, e.p, e.q, 1e-6));
  }
}

TEST(SupportEnum, RandomGamesHaveAtLeastOneEquilibrium) {
  // Nash's theorem: every finite game has an equilibrium; support enumeration
  // over a non-degenerate random game must find at least one.
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const BimatrixGame g = random_game(2 + trial % 3, 2 + (trial / 3) % 3, rng);
    EXPECT_GE(all_equilibria(g).size(), 1u) << g.to_string();
  }
}

TEST(SupportEnum, OddNumberOfEquilibriaGenerically) {
  // Wilson's oddness theorem holds for almost all games.
  util::Rng rng(4321);
  int odd = 0, total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const BimatrixGame g = random_game(3, 3, rng);
    const auto result = support_enumeration(g);
    if (result.degenerate_flag) continue;
    ++total;
    if (result.equilibria.size() % 2 == 1) ++odd;
  }
  ASSERT_GT(total, 0);
  EXPECT_EQ(odd, total);
}

TEST(SupportEnum, MaxSupportLimitsSearch) {
  SupportEnumOptions opts;
  opts.max_support = 1;  // only pure strategy supports
  const auto result = support_enumeration(bird_game(), opts);
  EXPECT_EQ(result.equilibria.size(), 3u);
}

}  // namespace
}  // namespace cnash::game
