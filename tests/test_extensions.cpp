// Tests for the extensions beyond the paper's core: fault injection in the
// crossbar, the silicon-area model, and support-biased SA initialization.

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/games.hpp"
#include "game/strategy.hpp"
#include "game/support_enum.hpp"
#include "util/rng.hpp"
#include "xbar/area.hpp"
#include "xbar/array.hpp"
#include "xbar/energy.hpp"

namespace cnash {
namespace {

// ---------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------

xbar::ProgrammedCrossbar make_xbar(double stuck_off, double stuck_on,
                                   std::uint64_t seed = 77) {
  xbar::CrossbarMapping map(la::Matrix{{3, 1}, {2, 4}}, 8);
  xbar::ArrayConfig cfg;
  cfg.ideal = true;
  cfg.stuck_off_rate = stuck_off;
  cfg.stuck_on_rate = stuck_on;
  util::Rng rng(seed);
  return xbar::ProgrammedCrossbar(std::move(map), cfg, rng);
}

TEST(Faults, ZeroRatesChangeNothing) {
  const auto clean = make_xbar(0.0, 0.0);
  const auto also_clean = make_xbar(0.0, 0.0, 78);
  const std::vector<std::uint32_t> rows{4, 4}, groups{4, 4};
  EXPECT_DOUBLE_EQ(clean.read_vmv(rows, groups),
                   also_clean.read_vmv(rows, groups));
}

TEST(Faults, StuckOffReducesCurrent) {
  const auto clean = make_xbar(0.0, 0.0);
  const auto faulty = make_xbar(0.3, 0.0);
  const std::vector<std::uint32_t> rows{8, 8}, groups{8, 8};
  const double i_clean = clean.read_vmv(rows, groups);
  const double i_faulty = faulty.read_vmv(rows, groups);
  EXPECT_LT(i_faulty, i_clean);
  // ~30 % of conducting cells lost.
  EXPECT_NEAR(i_faulty / i_clean, 0.7, 0.08);
}

TEST(Faults, StuckOnIncreasesCurrent) {
  const auto clean = make_xbar(0.0, 0.0);
  const auto faulty = make_xbar(0.0, 0.2);
  const std::vector<std::uint32_t> rows{8, 8}, groups{8, 8};
  EXPECT_GT(faulty.read_vmv(rows, groups), clean.read_vmv(rows, groups));
}

TEST(Faults, AllStuckOffKillsArray) {
  const auto dead = make_xbar(1.0, 0.0);
  const std::vector<std::uint32_t> rows{8, 8}, groups{8, 8};
  EXPECT_DOUBLE_EQ(dead.read_vmv(rows, groups), 0.0);
}

TEST(Faults, SolverSurvivesSmallFaultRates) {
  core::CNashConfig cfg;
  cfg.intervals = 12;
  cfg.sa.iterations = 6000;
  cfg.seed = 2027;
  cfg.hardware.array.stuck_off_rate = 0.002;  // 0.2 % dead cells
  core::CNashSolver solver(game::battle_of_sexes(), cfg);
  const auto gt = game::all_equilibria(solver.game());
  std::vector<core::CandidateSolution> cands;
  for (const auto& o : solver.run(40)) cands.push_back({o.p, o.q});
  const auto r = core::classify(solver.game(), gt, cands, 1e-9);
  EXPECT_GE(r.success_rate(), 0.8);
}

// ---------------------------------------------------------------------------
// Area model.
// ---------------------------------------------------------------------------

TEST(Area, BreakdownSumsToTotal) {
  const xbar::AreaModel model;
  const xbar::MappingGeometry geom{3, 3, 12, 2};
  const auto a = model.crossbar(geom, 1, 3);
  EXPECT_DOUBLE_EQ(a.total_um2(), a.array_um2 + a.drivers_um2 + a.sense_um2 +
                                      a.adc_um2 + a.wta_um2 + a.logic_um2);
  EXPECT_GT(a.array_um2, 0.0);
}

TEST(Area, ArrayAreaScalesWithCells) {
  const xbar::AreaModel model;
  const xbar::MappingGeometry small{2, 2, 12, 2};
  const xbar::MappingGeometry big{8, 8, 60, 22};
  EXPECT_GT(model.crossbar(big, 1, 7).array_um2,
            100.0 * model.crossbar(small, 1, 1).array_um2);
  EXPECT_DOUBLE_EQ(model.crossbar(small, 1, 1).array_um2,
                   model.params().cell_um2 * small.total_cells());
}

TEST(Area, MacroIncludesBothCrossbarsAndLogic) {
  const xbar::AreaModel model;
  const xbar::MappingGeometry gm{3, 3, 12, 2};
  const auto one = model.crossbar(gm, 1, 3);
  const auto macro = model.macro(gm, gm);
  EXPECT_NEAR(macro.array_um2, 2.0 * one.array_um2, 1e-9);
  EXPECT_DOUBLE_EQ(macro.logic_um2, model.params().sa_logic_um2);
  EXPECT_GT(macro.total_um2(), 2.0 * one.total_um2() * 0.9);
}

TEST(Area, TiledMacroPaysTileOverheadAndHtree) {
  const xbar::AreaModel model;
  // 32 actions, I=8, t=7: monolithic 256×1792 cells vs 4×2 tiles of 64×1024.
  const xbar::MappingGeometry geom{32, 32, 8, 7};
  const auto mono = model.macro(geom, geom);
  const auto tiled = model.tiled_macro(64, 1024, 8, 8, 32, 32);
  // Fixed-size tiles waste unused lines: the tiled macro is strictly larger.
  EXPECT_GT(tiled.array_um2, mono.array_um2);
  EXPECT_GT(tiled.htree_um2, 0.0);
  EXPECT_DOUBLE_EQ(tiled.htree_um2,
                   2.0 * model.params().htree_adder_um2 * 7.0);  // 8 tiles
  EXPECT_DOUBLE_EQ(tiled.logic_um2, model.params().sa_logic_um2);
  EXPECT_DOUBLE_EQ(tiled.total_um2(),
                   tiled.array_um2 + tiled.drivers_um2 + tiled.sense_um2 +
                       tiled.adc_um2 + tiled.wta_um2 + tiled.logic_um2 +
                       tiled.htree_um2);
  // A single-tile grid pays no adders.
  EXPECT_DOUBLE_EQ(model.tiled_macro(64, 1024, 1, 1, 4, 4).htree_um2, 0.0);
}

TEST(Energy, HtreeAdderEnergyScalesWithFanin) {
  const xbar::EnergyModel model;
  EXPECT_DOUBLE_EQ(model.htree(1), 0.0);
  EXPECT_DOUBLE_EQ(model.htree(8),
                   7.0 * model.params().htree_adder_energy_j);
  EXPECT_GT(model.htree(16), model.htree(8));
}

// ---------------------------------------------------------------------------
// Support-biased initialization.
// ---------------------------------------------------------------------------

TEST(RandomSupport, AlwaysAValidComposition) {
  util::Rng rng(91);
  for (int t = 0; t < 500; ++t) {
    const auto s = game::QuantizedStrategy::random_support(8, 60, rng);
    std::uint32_t total = 0;
    for (auto c : s.counts()) total += c;
    EXPECT_EQ(total, 60u);
  }
}

TEST(RandomSupport, CoversAllSupportSizes) {
  util::Rng rng(92);
  std::vector<int> size_seen(9, 0);
  for (int t = 0; t < 2000; ++t) {
    const auto s = game::QuantizedStrategy::random_support(8, 60, rng);
    ++size_seen[game::support(s.to_distribution()).size()];
  }
  for (std::size_t sz = 1; sz <= 8; ++sz)
    EXPECT_GT(size_seen[sz], 0) << "support size " << sz << " never drawn";
}

TEST(RandomSupport, SupportSizeCappedByIntervals) {
  util::Rng rng(93);
  for (int t = 0; t < 200; ++t) {
    const auto s = game::QuantizedStrategy::random_support(8, 3, rng);
    EXPECT_LE(game::support(s.to_distribution()).size(), 3u);
  }
}

TEST(SaInit, BothModesSolveBattleOfSexes) {
  for (const auto init :
       {core::SaInit::kRandomComposition, core::SaInit::kRandomSupport}) {
    core::CNashConfig cfg;
    cfg.use_hardware = false;
    cfg.intervals = 12;
    cfg.sa.iterations = 4000;
    cfg.sa.init = init;
    cfg.seed = 2028;
    core::CNashSolver solver(game::battle_of_sexes(), cfg);
    const auto gt = game::all_equilibria(solver.game());
    std::vector<core::CandidateSolution> cands;
    for (const auto& o : solver.run(30)) cands.push_back({o.p, o.q});
    const auto r = core::classify(solver.game(), gt, cands, 1e-9);
    EXPECT_GE(r.success_rate(), 0.9);
  }
}

TEST(SaInit, SupportBiasFindsPureSolutionsOnLargeGame) {
  // The reason the option exists: on the 8-action game, support-biased cold
  // starts reach pure equilibria that composition-random hot starts miss.
  core::CNashConfig cfg;
  cfg.use_hardware = false;
  cfg.intervals = 60;
  cfg.sa.iterations = 8000;
  cfg.sa.init = core::SaInit::kRandomSupport;
  cfg.seed = 2029;
  core::CNashSolver solver(game::modified_prisoners_dilemma(), cfg);
  const auto gt = game::all_equilibria(solver.game());
  std::vector<core::CandidateSolution> cands;
  for (const auto& o : solver.run(60)) cands.push_back({o.p, o.q});
  const auto r = core::classify(solver.game(), gt, cands, 1e-9);
  EXPECT_GE(r.distinct_found(), 5u);
}

}  // namespace
}  // namespace cnash
