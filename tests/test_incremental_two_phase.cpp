// Equivalence of the incremental two-phase fast path (crossbar delta reads +
// propose/commit) against the full-read evaluation, plus the drift-refresh
// regression. Two evaluators built from the same seed share identical device
// sampling, so any disagreement is a fast-path bug, not hardware randomness.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/anneal.hpp"
#include "core/two_phase.hpp"
#include "game/games.hpp"
#include "util/rng.hpp"

namespace cnash::core {
namespace {

TwoPhaseConfig noiseless_config() {
  TwoPhaseConfig cfg;
  cfg.array.ideal = true;
  cfg.wta.offset_sigma = 0.0;
  cfg.wta.read_noise_rel = 0.0;
  cfg.adc_noise_rel = 0.0;  // quantization stays on — it is part of the path
  return cfg;
}

/// Draws a valid random tick move for one player of `prof`.
TickMove random_move(const game::QuantizedStrategy& s, TickMove::Player player,
                     util::Rng& rng) {
  const std::size_t n = s.num_actions();
  std::uint32_t from = 0;
  do {
    from = static_cast<std::uint32_t>(rng.uniform_index(n));
  } while (s.count(from) == 0);
  std::uint32_t to = 0;
  do {
    to = static_cast<std::uint32_t>(rng.uniform_index(n));
  } while (to == from);
  return {player, from, to};
}

/// Random walk driving evaluator `inc` through propose/commit and `full`
/// through whole-profile evaluate() on the same move sequence. Returns the
/// largest |f_inc - f_full| seen.
double walk_and_compare(TwoPhaseEvaluator& inc, TwoPhaseEvaluator& full,
                        game::BimatrixGame g, std::uint32_t intervals,
                        std::size_t steps, util::Rng& rng,
                        bool expect_exact) {
  game::QuantizedProfile prof{
      game::QuantizedStrategy::random(g.num_actions1(), intervals, rng),
      game::QuantizedStrategy::random(g.num_actions2(), intervals, rng)};
  inc.reset(prof);
  double worst = 0.0;
  for (std::size_t step = 0; step < steps; ++step) {
    TickMove moves[2];
    std::size_t count = 1;
    moves[0] = random_move(prof.p, TickMove::Player::kRow, rng);
    if (rng.bernoulli(0.5)) {
      moves[count++] = random_move(prof.q, TickMove::Player::kCol, rng);
    }
    for (std::size_t i = 0; i < count; ++i) {
      auto& s = moves[i].player == TickMove::Player::kRow ? prof.p : prof.q;
      s.move_tick(moves[i].from, moves[i].to);
    }
    const double f_inc = inc.propose(moves, count);
    const double f_full = full.evaluate(prof);
    worst = std::max(worst, std::abs(f_inc - f_full));
    if (expect_exact) {
      EXPECT_EQ(f_inc, f_full) << "step " << step;
    }
    if (rng.bernoulli(0.5)) {
      inc.commit();
    } else {
      // Rejected: revert the profile; the next propose() re-derives scratch
      // from the committed state.
      for (std::size_t i = count; i-- > 0;) {
        auto& s = moves[i].player == TickMove::Player::kRow ? prof.p : prof.q;
        s.move_tick(moves[i].to, moves[i].from);
      }
    }
  }
  return worst;
}

TEST(IncrementalTwoPhase, MatchesFullReadBitForBitWithoutNoise) {
  // With noise disabled no rng is consumed per read, so the two evaluators
  // stay aligned by construction; the post-ADC readouts must agree exactly.
  const auto g = game::bird_game();
  TwoPhaseEvaluator inc(g, 12, noiseless_config(), util::Rng(401));
  TwoPhaseEvaluator full(g, 12, noiseless_config(), util::Rng(401));
  util::Rng rng(402);
  walk_and_compare(inc, full, g, 12, 2000, rng, /*expect_exact=*/true);
}

TEST(IncrementalTwoPhase, MatchesFullReadOnAsymmetricGame) {
  // 8x8 modified PD at I=60: the largest paper instance, exercising deep
  // group counts and both-player proposals.
  const auto g = game::modified_prisoners_dilemma();
  TwoPhaseEvaluator inc(g, 60, noiseless_config(), util::Rng(403));
  TwoPhaseEvaluator full(g, 60, noiseless_config(), util::Rng(403));
  util::Rng rng(404);
  walk_and_compare(inc, full, g, 60, 1000, rng, /*expect_exact=*/true);
}

TEST(IncrementalTwoPhase, TracksFullReadWithinAdcLsbUnderNoise) {
  // Full non-idealities, noise fixed by seed: both evaluators consume one
  // identical rng draw batch per scoring, so outputs may differ only by the
  // fp drift of incremental accumulation — at most a single ADC code per
  // readout (4 readouts enter f).
  const auto g = game::bird_game();
  TwoPhaseConfig cfg;  // realistic defaults
  TwoPhaseEvaluator inc(g, 12, cfg, util::Rng(405));
  TwoPhaseEvaluator full(g, 12, cfg, util::Rng(405));
  util::Rng rng(406);
  const double worst =
      walk_and_compare(inc, full, g, 12, 1500, rng, /*expect_exact=*/false);
  const double lsb_payoff =
      inc.crossbar_m().current_to_value(inc.adc().lsb_current());
  EXPECT_LE(worst, 8.0 * lsb_payoff);
}

TEST(IncrementalTwoPhase, RefreshReReadsAtConfiguredInterval) {
  const auto g = game::battle_of_sexes();
  TwoPhaseConfig cfg = noiseless_config();
  cfg.refresh_interval = 16;
  TwoPhaseEvaluator inc(g, 12, cfg, util::Rng(407));
  TwoPhaseEvaluator full(g, 12, noiseless_config(), util::Rng(407));
  util::Rng rng(408);
  game::QuantizedProfile prof{
      game::QuantizedStrategy::random(2, 12, rng),
      game::QuantizedStrategy::random(2, 12, rng)};
  inc.reset(prof);
  std::size_t commits = 0;
  for (std::size_t step = 0; step < 100; ++step) {
    const TickMove mv = random_move(prof.p, TickMove::Player::kRow, rng);
    prof.p.move_tick(mv.from, mv.to);
    const double f_inc = inc.propose(&mv, 1);
    EXPECT_EQ(f_inc, full.evaluate(prof));
    inc.commit();  // every proposal committed: drift accumulates fastest
    ++commits;
    EXPECT_EQ(inc.refresh_count(), commits / cfg.refresh_interval);
  }
}

TEST(IncrementalTwoPhase, ProposeBeforeResetThrows) {
  TwoPhaseEvaluator hw(game::battle_of_sexes(), 12, noiseless_config(),
                       util::Rng(409));
  const TickMove mv{TickMove::Player::kRow, 0, 1};
  EXPECT_THROW(hw.propose(&mv, 1), std::logic_error);
  EXPECT_THROW(hw.commit(), std::logic_error);
}

TEST(IncrementalTwoPhase, IncrementalFlagGatesProtocol) {
  TwoPhaseConfig on = noiseless_config();
  TwoPhaseConfig off = noiseless_config();
  off.incremental = false;
  TwoPhaseEvaluator hw_on(game::bird_game(), 12, on, util::Rng(410));
  TwoPhaseEvaluator hw_off(game::bird_game(), 12, off, util::Rng(410));
  EXPECT_NE(hw_on.incremental(), nullptr);
  EXPECT_EQ(hw_off.incremental(), nullptr);
}

TEST(IncrementalTwoPhase, SaTrajectoryIdenticalOnBothPaths) {
  // The SA loop takes the in-place propose/commit route when the evaluator
  // exposes it and the full-copy + evaluate() route otherwise; without noise
  // both must visit exactly the same states and land on the same profile.
  const auto g = game::bird_game();
  TwoPhaseConfig on = noiseless_config();
  TwoPhaseConfig off = noiseless_config();
  off.incremental = false;
  TwoPhaseEvaluator hw_on(g, 12, on, util::Rng(411));
  TwoPhaseEvaluator hw_off(g, 12, off, util::Rng(411));
  SaOptions opts;
  opts.iterations = 3000;
  util::Rng rng_a(412), rng_b(412);
  const auto res_inc = simulated_annealing(hw_on, 12, opts, rng_a);
  const auto res_full = simulated_annealing(hw_off, 12, opts, rng_b);
  EXPECT_EQ(res_inc.final_profile, res_full.final_profile);
  EXPECT_EQ(res_inc.best_profile, res_full.best_profile);
  EXPECT_EQ(res_inc.accepted, res_full.accepted);
  EXPECT_NEAR(res_inc.final_objective, res_full.final_objective, 1e-9);
}

}  // namespace
}  // namespace cnash::core
