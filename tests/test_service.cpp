// SolverService: the asynchronous multi-game job queue over one shared worker
// pool. Contracts under test (see service.hpp):
//   * every registered backend solves the same game through submit();
//   * reports are bit-identical for any pool size (1/2/8), any per-job
//     parallelism cap and any submission interleaving, with jobs submitted
//     concurrently (keyed per-unit RNG streams — wall_clock_s excluded);
//   * concurrent submissions from many threads are safe (TSan-exercised in
//     CI) and still deterministic;
//   * unknown backend names reject via the future, other jobs unaffected.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/service.hpp"
#include "game/games.hpp"

namespace cnash::core {
namespace {

void append_bits(std::string& fp, double v) {
  const char* bytes = reinterpret_cast<const char*>(&v);
  fp.append(bytes, sizeof(v));
}

/// Byte-level fingerprint of everything the determinism guarantee covers —
/// every report field except the measured wall clock.
std::string fingerprint(const SolveReport& r) {
  std::string fp = r.backend + '|' + r.game_name + '|';
  fp += std::to_string(r.nash_count) + ',' + std::to_string(r.valid_count);
  append_bits(fp, r.best_objective);
  append_bits(fp, r.modeled_time_s);
  for (const SolveSample& s : r.samples) {
    fp += s.key();
    fp += s.valid ? 'v' : '-';
    fp += s.is_nash ? 'n' : '-';
    append_bits(fp, s.objective);
    append_bits(fp, s.regret);
    for (double x : s.p) append_bits(fp, x);
    for (double x : s.q) append_bits(fp, x);
    fp += '\n';
  }
  return fp;
}

SolveRequest sa_request(const game::BimatrixGame& g, const std::string& backend,
                        std::size_t runs, std::uint64_t seed,
                        std::size_t iterations = 400) {
  SolveRequest req(g);
  req.backend = backend;
  req.runs = runs;
  req.seed = seed;
  req.sa.iterations = iterations;
  return req;
}

TEST(SolverService, AllRegisteredBackendsSolveTheSameGameThroughSubmit) {
  const auto names = SolverRegistry::global().names();
  ASSERT_EQ(names.size(), 8u);
  SolverService service(ServiceOptions{4});
  const game::BimatrixGame g = game::battle_of_sexes();

  std::vector<std::future<SolveReport>> futures;
  for (const std::string& name : names)
    futures.push_back(
        service.submit(sa_request(g, name, /*runs=*/40, 2024, 3000)));

  for (std::size_t i = 0; i < names.size(); ++i) {
    const SolveReport report = futures[i].get();
    EXPECT_EQ(report.backend, names[i]);
    EXPECT_EQ(report.game_name, g.name());
    ASSERT_FALSE(report.samples.empty()) << names[i];
    // Every family finds at least one verified equilibrium of this game.
    EXPECT_GE(report.nash_count, 1u) << names[i];
    EXPECT_GT(report.nash_rate(), 0.0) << names[i];
    for (const SolveSample& s : report.samples) {
      EXPECT_EQ(s.p.size(), g.num_actions1()) << names[i];
      EXPECT_EQ(s.q.size(), g.num_actions2()) << names[i];
    }
  }
}

TEST(SolverService, BitIdenticalReportsForAnyThreadCountAndInterleaving) {
  // The acceptance contract: two (here three) jobs submitted concurrently,
  // pools of 1/2/8 workers, reports byte-identical to the single-threaded
  // baseline — and identical again when the submission order is reversed.
  const SolveRequest job_a =
      sa_request(game::bird_game(), "hardware-sa", 8, 0xA11CE);
  const SolveRequest job_b =
      sa_request(game::battle_of_sexes(), "exact-sa", 8, 0xB0B);
  SolveRequest job_c =
      sa_request(game::battle_of_sexes(), "dwave-advantage41", 12, 0xCAFE);

  std::vector<std::string> baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SolverService service(ServiceOptions{threads});
    auto fa = service.submit(job_a);
    auto fb = service.submit(job_b);
    auto fc = service.submit(job_c);
    std::vector<std::string> fps{fingerprint(fa.get()), fingerprint(fb.get()),
                                 fingerprint(fc.get())};
    if (baseline.empty()) {
      baseline = fps;
    } else {
      EXPECT_EQ(fps, baseline) << "threads=" << threads;
    }
  }

  SolverService reversed(ServiceOptions{3});
  auto fc = reversed.submit(job_c);
  auto fb = reversed.submit(job_b);
  auto fa = reversed.submit(job_a);
  EXPECT_EQ(fingerprint(fa.get()), baseline[0]);
  EXPECT_EQ(fingerprint(fb.get()), baseline[1]);
  EXPECT_EQ(fingerprint(fc.get()), baseline[2]);
}

TEST(SolverService, PerJobParallelismCapNeverChangesResults) {
  SolveRequest req = sa_request(game::bird_game(), "hardware-sa", 6, 99);
  SolverService service(ServiceOptions{4});
  const std::string uncapped = fingerprint(service.solve(req));
  for (const std::size_t cap : {1u, 2u, 3u}) {
    req.max_parallelism = cap;
    EXPECT_EQ(fingerprint(service.solve(req)), uncapped) << "cap=" << cap;
  }
}

TEST(SolverService, ConcurrentSubmissionFromManyThreadsIsDeterministic) {
  // The TSan-exercised case: four submitter threads race jobs into one
  // service; every job's report must equal its synchronous reference.
  SolverService service(ServiceOptions{4});
  const game::BimatrixGame g = game::battle_of_sexes();
  constexpr std::size_t kThreads = 4, kJobsPerThread = 3;

  std::vector<std::string> expected(kThreads * kJobsPerThread);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const SolveRequest req = sa_request(g, "exact-sa", 4, 1000 + i, 200);
    expected[i] = fingerprint(SolverRegistry::global().at("exact-sa").solve(req));
  }

  std::vector<std::string> got(expected.size());
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t)
    submitters.emplace_back([&, t] {
      for (std::size_t j = 0; j < kJobsPerThread; ++j) {
        const std::size_t i = t * kJobsPerThread + j;
        got[i] = fingerprint(
            service.solve(sa_request(g, "exact-sa", 4, 1000 + i, 200)));
      }
    });
  for (std::thread& t : submitters) t.join();
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "job " << i;
}

TEST(SolverService, UnknownBackendRejectsViaFuture) {
  SolverService service(ServiceOptions{1});
  auto future = service.submit(
      sa_request(game::battle_of_sexes(), "quantum-oracle", 1, 1));
  try {
    future.get();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the registered keys so callers can self-correct.
    EXPECT_NE(std::string(e.what()).find("hardware-sa"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("quantum-oracle"), std::string::npos);
  }
  // The service keeps serving after a rejected submission.
  EXPECT_GE(
      service.solve(sa_request(game::battle_of_sexes(), "exact-sa", 2, 7, 200))
          .samples.size(),
      2u);
}

TEST(SolverService, ZeroRunRequestsRejectAtSubmitTime) {
  // Satellite contract: runs == 0 resolves the future immediately with a
  // clear std::invalid_argument instead of surfacing from a worker thread.
  SolverService service(ServiceOptions{2});
  auto future =
      service.submit(sa_request(game::battle_of_sexes(), "hardware-sa", 0, 1));
  try {
    future.get();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("runs == 0"), std::string::npos);
  }
  // The pool is unaffected: a valid job still solves.
  const SolveReport ok =
      service.solve(sa_request(game::battle_of_sexes(), "exact-sa", 4, 7));
  EXPECT_EQ(ok.samples.size(), 4u);
}

TEST(SolverService, NonFinitePayoffsRejectAtSubmitTime) {
  la::Matrix m{{1.0, 0.0}, {0.0, std::numeric_limits<double>::quiet_NaN()}};
  const game::BimatrixGame bad(m, m, "nan-game");
  SolverService service(ServiceOptions{1});
  auto future = service.submit(sa_request(bad, "exact-sa", 2, 1));
  try {
    future.get();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
  }
}

TEST(SolverBackendValidation, SynchronousSolveRejectsZeroRuns) {
  SolveRequest req = sa_request(game::battle_of_sexes(), "exact-sa", 0, 1);
  EXPECT_THROW(SolverRegistry::global().at("exact-sa").solve(req),
               std::invalid_argument);
}

TEST(SolverService, ExactBackendsVerifyAndDeduplicate) {
  SolverService service(ServiceOptions{4});
  const game::BimatrixGame g = game::bird_game();

  const SolveReport se = service.solve(sa_request(g, "support-enum", 1, 0));
  EXPECT_EQ(se.samples.size(), 7u);  // 3 pure + 3 pairwise + 1 full support
  for (const SolveSample& s : se.samples) {
    EXPECT_TRUE(s.is_nash);
    EXPECT_LE(s.regret, 1e-7);
    EXPECT_FALSE(s.profile.has_value());
  }

  const SolveReport lh = service.solve(sa_request(g, "lemke-howson", 1, 0));
  ASSERT_GE(lh.samples.size(), 1u);
  for (const SolveSample& s : lh.samples) EXPECT_TRUE(s.is_nash);
  for (std::size_t i = 0; i < lh.samples.size(); ++i)
    for (std::size_t j = i + 1; j < lh.samples.size(); ++j)
      EXPECT_NE(lh.samples[i].key(), lh.samples[j].key());
}

TEST(SolverService, DrainFinishesQueuedWorkAndRejectsNewSubmissions) {
  // Satellite contract: drain() stops accepting, finishes every queued job
  // (all futures resolved when it returns) — the graceful-shutdown hook the
  // serve/ gateway relies on. More jobs than workers so some are still
  // queued when the drain starts.
  SolverService service(ServiceOptions{2});
  const game::BimatrixGame g = game::battle_of_sexes();
  std::vector<std::future<SolveReport>> futures;
  for (std::size_t i = 0; i < 6; ++i)
    futures.push_back(
        service.submit(sa_request(g, "exact-sa", 4, 100 + i, 400)));

  EXPECT_FALSE(service.draining());
  service.drain();
  EXPECT_TRUE(service.draining());
  EXPECT_EQ(service.pending_jobs(), 0u);

  for (auto& future : futures) {
    // Resolved already — get() must not block on new work.
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(future.get().samples.size(), 4u);
  }

  // Post-drain submissions are rejected via the future, not accepted.
  auto late = service.submit(sa_request(g, "exact-sa", 2, 1, 200));
  EXPECT_THROW(late.get(), std::runtime_error);

  // drain() is idempotent.
  service.drain();
}

TEST(SolverService, QueueDepthTracksQueuedAndInFlightUnits) {
  SolverService service(ServiceOptions{1});
  const SolverService::QueueDepth idle = service.queue_depth();
  EXPECT_EQ(idle.jobs, 0u);
  EXPECT_EQ(idle.queued_units, 0u);
  EXPECT_EQ(idle.in_flight_units, 0u);

  // Three jobs on a single worker: right after submit at least two must
  // still be queued (the worker can hold only one unit at a time).
  std::vector<std::future<SolveReport>> futures;
  for (std::size_t i = 0; i < 3; ++i)
    futures.push_back(
        service.submit(sa_request(game::battle_of_sexes(), "exact-sa", 3,
                                  7 + i, 2000)));
  const SolverService::QueueDepth busy = service.queue_depth();
  EXPECT_GE(busy.jobs, 2u);
  EXPECT_GE(busy.queued_units + busy.in_flight_units, 2u);
  EXPECT_LE(busy.in_flight_units, 1u);  // one worker

  for (auto& future : futures) future.get();
  const SolverService::QueueDepth done = service.queue_depth();
  EXPECT_EQ(done.jobs, 0u);
  EXPECT_EQ(done.queued_units, 0u);
  EXPECT_EQ(done.in_flight_units, 0u);
}

TEST(SolverService, ReportsCarryArchitectureTiming) {
  SolverService service(ServiceOptions{2});
  const game::BimatrixGame g = game::battle_of_sexes();

  const SolveReport hw =
      service.solve(sa_request(g, "hardware-sa", 3, 5, 500));
  EXPECT_GT(hw.modeled_time_s, 0.0);
  EXPECT_GT(hw.wall_clock_s, 0.0);

  const SolveReport dw = service.solve(sa_request(g, "dwave-2000q6", 5, 5));
  EXPECT_GT(dw.modeled_time_s, 0.0);

  const SolveReport exact = service.solve(sa_request(g, "exact-sa", 3, 5, 500));
  EXPECT_EQ(exact.modeled_time_s, 0.0);  // pure software, no hardware model
}

}  // namespace
}  // namespace cnash::core
