// SolverBackend registry: the string-keyed normalisation of all solver
// families onto one SolveRequest → SolveReport contract — registry lookup
// semantics, per-sample ε-Nash verification, and equivalence between the
// synchronous solve() path, the service path and the legacy SolverEngine.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/service.hpp"
#include "core/timing.hpp"
#include "game/games.hpp"
#include "game/random_games.hpp"

namespace cnash::core {
namespace {

void append_bits(std::string& fp, double v) {
  const char* bytes = reinterpret_cast<const char*>(&v);
  fp.append(bytes, sizeof(v));
}

std::string samples_fingerprint(const std::vector<SolveSample>& samples) {
  std::string fp;
  for (const SolveSample& s : samples) {
    fp += s.key();
    fp += s.valid ? 'v' : '-';
    fp += s.is_nash ? 'n' : '-';
    append_bits(fp, s.objective);
    append_bits(fp, s.regret);
    for (double x : s.p) append_bits(fp, x);
    for (double x : s.q) append_bits(fp, x);
    fp += '\n';
  }
  return fp;
}

TEST(SolverRegistry, GlobalRegistersTheEightBackends) {
  const std::vector<std::string> expected{
      "hardware-sa",  "hardware-sa-tiled", "exact-sa",    "dwave-2000q6",
      "dwave-advantage41", "lemke-howson", "support-enum", "resilient"};
  EXPECT_EQ(SolverRegistry::global().names(), expected);
  for (const std::string& name : expected) {
    const SolverBackend* backend = SolverRegistry::global().find(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
    EXPECT_FALSE(backend->describe().empty()) << name;
  }
}

TEST(SolverRegistry, UnknownKeyLookups) {
  EXPECT_EQ(SolverRegistry::global().find("nope"), nullptr);
  try {
    SolverRegistry::global().at("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("support-enum"), std::string::npos);
  }
}

TEST(SolverRegistry, RejectsDuplicateKeys) {
  class Dummy final : public SolverBackend {
   public:
    const std::string& name() const override { return name_; }
    std::string describe() const override { return "dummy"; }
    std::unique_ptr<PreparedJob> prepare(const SolveRequest&) const override {
      return nullptr;
    }

   private:
    std::string name_ = "dummy";
  };
  SolverRegistry registry;
  registry.add(std::make_unique<Dummy>());
  EXPECT_THROW(registry.add(std::make_unique<Dummy>()),
               std::invalid_argument);
}

TEST(SolverBackend, SynchronousSolveMatchesServiceSubmission) {
  SolveRequest req(game::bird_game());
  req.backend = "exact-sa";
  req.runs = 6;
  req.seed = 4242;
  req.sa.iterations = 300;
  const SolveReport direct = SolverRegistry::global().at("exact-sa").solve(req);
  SolverService service(ServiceOptions{3});
  const SolveReport via_service = service.solve(req);
  EXPECT_EQ(samples_fingerprint(direct.samples),
            samples_fingerprint(via_service.samples));
  EXPECT_EQ(direct.nash_count, via_service.nash_count);
  EXPECT_EQ(direct.best_objective, via_service.best_objective);
}

TEST(SolverBackend, HardwareSaReproducesTheSolverEngine) {
  // Migration guarantee: the registry backend and the legacy engine drive the
  // exact same keyed streams, so their outcomes are byte-identical.
  const game::BimatrixGame g = game::bird_game();
  const std::uint64_t seed = 0xFEED;

  EngineOptions opts;
  opts.intervals = 12;
  opts.sa.iterations = 500;
  opts.seed = seed;
  SolverEngine engine(std::make_shared<HardwareEvaluatorFactory>(
                          g, opts.intervals, TwoPhaseConfig{}, util::Rng(seed)),
                      opts);
  const auto engine_samples = engine.run(10);

  SolveRequest req(g);
  req.backend = "hardware-sa";
  req.runs = 10;
  req.seed = seed;
  req.sa.iterations = 500;
  const SolveReport report =
      SolverRegistry::global().at("hardware-sa").solve(req);

  EXPECT_EQ(samples_fingerprint(engine_samples),
            samples_fingerprint(report.samples));
}

TEST(SolverBackend, TiledBackendByteReproducesMonolithicOnSingleTileGames) {
  // Acceptance contract: when the whole game fits one tile, the
  // "hardware-sa-tiled" report is byte-identical to "hardware-sa" (same
  // seeds, full non-idealities on) — samples, counts and objectives; only
  // the backend label and the latency model differ.
  SolveRequest req(game::bird_game());
  req.backend = "hardware-sa";
  req.runs = 8;
  req.seed = 0x717ED;
  req.sa.iterations = 600;
  const SolveReport mono = SolverRegistry::global().at("hardware-sa").solve(req);

  req.backend = "hardware-sa-tiled";
  req.chip.tile_rows = 1024;  // whole array in one tile
  req.chip.tile_cols = 4096;
  const SolveReport tiled =
      SolverRegistry::global().at("hardware-sa-tiled").solve(req);

  EXPECT_EQ(samples_fingerprint(mono.samples),
            samples_fingerprint(tiled.samples));
  EXPECT_EQ(mono.nash_count, tiled.nash_count);
  EXPECT_EQ(mono.valid_count, tiled.valid_count);
  EXPECT_EQ(mono.best_objective, tiled.best_objective);
  EXPECT_EQ(tiled.backend, "hardware-sa-tiled");
  EXPECT_GT(tiled.modeled_time_s, 0.0);
}

TEST(SolverBackend, TiledBackendSolvesGamesBeyondTheMonolithicBenchRange) {
  // The tiled backend lifts the solvable range: a 12-action (per player)
  // sharded game solves end-to-end through the registry with a real tile
  // grid (several tiles per array) and still finds equilibria.
  util::Rng rng(0x60D);
  SolveRequest req(game::random_dominance_solvable_game(12, 12, rng));
  req.backend = "hardware-sa-tiled";
  req.runs = 6;
  req.seed = 99;
  req.intervals = 8;
  req.sa.iterations = 4000;
  req.chip.tile_rows = 16;
  req.chip.tile_cols = 512;
  const SolveReport report =
      SolverRegistry::global().at("hardware-sa-tiled").solve(req);
  EXPECT_EQ(report.samples.size(), 6u);
  EXPECT_GE(report.nash_count, 1u);
}

TEST(SolverBackend, SamplesCarryEpsilonNashVerification) {
  SolveRequest req(game::battle_of_sexes());
  req.backend = "exact-sa";
  req.runs = 20;
  req.seed = 77;
  req.sa.iterations = 3000;
  req.nash_eps = 1e-7;
  const SolveReport report = SolverRegistry::global().at("exact-sa").solve(req);
  std::size_t nash = 0;
  for (const SolveSample& s : report.samples) {
    ASSERT_TRUE(s.valid);
    ASSERT_TRUE(s.profile.has_value());
    EXPECT_EQ(s.is_nash, s.regret <= req.nash_eps);
    if (s.is_nash) ++nash;
  }
  EXPECT_EQ(report.nash_count, nash);
  EXPECT_GE(nash, 15u);  // most 3000-iteration runs land on an equilibrium
}

TEST(SolverBackend, DWaveModeledTimeMatchesTimingModel) {
  SolveRequest req(game::battle_of_sexes());
  req.backend = "dwave-advantage41";
  req.runs = 25;
  const SolveReport report =
      SolverRegistry::global().at("dwave-advantage41").solve(req);
  const DWaveTimingParams t = dwave_advantage41_timing();
  EXPECT_DOUBLE_EQ(report.modeled_time_s,
                   t.programming_s + t.per_sample_s * 25.0);
}

TEST(SolverBackend, InvalidDWaveReadsAreCountedNotDropped) {
  // The noisy Advantage proxy regularly emits one-hot-violating reads; they
  // must appear in the report as valid=false with NaN regret, never as NE.
  SolveRequest req(game::bird_game());
  req.backend = "dwave-advantage41";
  req.runs = 60;
  req.seed = 31337;
  const SolveReport report =
      SolverRegistry::global().at("dwave-advantage41").solve(req);
  EXPECT_EQ(report.samples.size(), 60u);
  EXPECT_LE(report.valid_count, report.samples.size());
  for (const SolveSample& s : report.samples) {
    if (s.valid) continue;
    EXPECT_FALSE(s.is_nash);
    EXPECT_TRUE(std::isnan(s.regret));
  }
}

TEST(SolveSampleKey, ProfileAndDistributionKeysAreStable) {
  SolveSample with_profile;
  with_profile.p = {1.0, 0.0};
  with_profile.q = {0.0, 1.0};
  with_profile.profile = game::QuantizedProfile{
      game::QuantizedStrategy::pure(2, 0, 12),
      game::QuantizedStrategy::pure(2, 1, 12)};
  EXPECT_EQ(with_profile.key(), with_profile.profile->key());

  SolveSample bare = with_profile;
  bare.profile.reset();
  SolveSample other = bare;
  other.q = {1.0, 0.0};
  EXPECT_EQ(bare.key(), SolveSample(bare).key());
  EXPECT_NE(bare.key(), other.key());
}

}  // namespace
}  // namespace cnash::core
