#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "simd/simd.hpp"
#include "util/rng.hpp"

namespace cnash::simd {
namespace {

// Pins dispatch to `level` for one test body, restoring the best supported
// level on destruction so test order never leaks a forced level.
class ScopedLevel {
 public:
  explicit ScopedLevel(IsaLevel level) : ok_(force_level(level)) {}
  ~ScopedLevel() { force_level(max_supported_level()); }
  bool ok() const { return ok_; }

 private:
  bool ok_;
};

std::vector<IsaLevel> available_levels() {
  std::vector<IsaLevel> out{IsaLevel::kScalar};
  if (max_supported_level() >= IsaLevel::kAvx2) out.push_back(IsaLevel::kAvx2);
  if (max_supported_level() >= IsaLevel::kAvx512)
    out.push_back(IsaLevel::kAvx512);
  return out;
}

std::vector<double> random_vec(util::Rng& rng, std::size_t n, double lo = -2.0,
                               double hi = 2.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t ba, bb;
    std::memcpy(&ba, &a[i], 8);
    std::memcpy(&bb, &b[i], 8);
    ASSERT_EQ(ba, bb) << what << " diverges at index " << i << ": " << a[i]
                      << " vs " << b[i];
  }
}

TEST(SimdDispatch, LevelsAreOrderedAndNamed) {
  EXPECT_GE(max_supported_level(), IsaLevel::kScalar);
  EXPECT_GE(active_level(), IsaLevel::kScalar);
  EXPECT_LE(active_level(), max_supported_level());
  EXPECT_STREQ(level_name(IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(level_name(IsaLevel::kAvx2), "avx2");
  EXPECT_STREQ(level_name(IsaLevel::kAvx512), "avx512");
}

TEST(SimdDispatch, ForceScalarAlwaysSucceeds) {
  ScopedLevel pin(IsaLevel::kScalar);
  EXPECT_TRUE(pin.ok());
  EXPECT_EQ(active_level(), IsaLevel::kScalar);
}

TEST(SimdDispatch, ForceAboveSupportFailsAndLeavesLevel) {
  if (max_supported_level() >= IsaLevel::kAvx512)
    GTEST_SKIP() << "every level supported on this host";
  const IsaLevel before = active_level();
  EXPECT_FALSE(force_level(IsaLevel::kAvx512));
  EXPECT_EQ(active_level(), before);
}

// Every element-wise kernel and reduction must produce identical BITS at
// every ISA level — the contract that makes SIMD invisible to SA
// trajectories, reports and the golden tests.
TEST(SimdKernels, BitIdenticalAcrossLevels) {
  // Sizes straddling the vector widths: sub-lane, odd tails, exact multiples.
  const std::size_t sizes[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 64, 151, 256};
  for (const IsaLevel level : available_levels()) {
    for (const std::size_t n : sizes) {
      util::Rng rng(0x51D0 + n);
      const auto x = random_vec(rng, n);
      const auto a = random_vec(rng, n);
      const auto b = random_vec(rng, n);
      const auto y0 = random_vec(rng, n);
      const double s = rng.uniform(-3.0, 3.0);
      const std::size_t skip = rng.uniform_index(n + 1);  // may be == n

      // Scalar reference pass.
      std::vector<double> acc_s, diff_s, sdiff_s, axpy_s, axpysk_s;
      double dot_s, max_s;
      {
        ScopedLevel pin(IsaLevel::kScalar);
        ASSERT_TRUE(pin.ok());
        acc_s = y0;
        accumulate(acc_s.data(), x.data(), n);
        diff_s = y0;
        add_diff(diff_s.data(), a.data(), b.data(), n);
        sdiff_s = y0;
        add_scaled_diff(sdiff_s.data(), a.data(), b.data(), s, n);
        axpy_s = y0;
        axpy(axpy_s.data(), s, x.data(), n);
        axpysk_s = y0;
        axpy_skip(axpysk_s.data(), s, x.data(), n, skip);
        dot_s = dot(a.data(), b.data(), n);
        max_s = max_value(x.data(), n);
      }

      ScopedLevel pin(level);
      ASSERT_TRUE(pin.ok());
      std::vector<double> y = y0;
      accumulate(y.data(), x.data(), n);
      expect_bitwise_equal(y, acc_s, "accumulate");
      y = y0;
      add_diff(y.data(), a.data(), b.data(), n);
      expect_bitwise_equal(y, diff_s, "add_diff");
      y = y0;
      add_scaled_diff(y.data(), a.data(), b.data(), s, n);
      expect_bitwise_equal(y, sdiff_s, "add_scaled_diff");
      y = y0;
      axpy(y.data(), s, x.data(), n);
      expect_bitwise_equal(y, axpy_s, "axpy");
      y = y0;
      axpy_skip(y.data(), s, x.data(), n, skip);
      expect_bitwise_equal(y, axpysk_s, "axpy_skip");
      EXPECT_EQ(dot(a.data(), b.data(), n), dot_s);
      EXPECT_EQ(max_value(x.data(), n), max_s);
    }
  }
}

TEST(SimdKernels, FillNormalsBitIdenticalAcrossLevels) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                              std::size_t{1001}}) {
    std::vector<double> ref(n);
    {
      ScopedLevel pin(IsaLevel::kScalar);
      util::Rng rng(0xBEEF + n);
      fill_normals(rng, ref.data(), n);
    }
    for (const IsaLevel level : available_levels()) {
      ScopedLevel pin(level);
      ASSERT_TRUE(pin.ok());
      util::Rng rng(0xBEEF + n);  // identical raw draw sequence
      std::vector<double> out(n);
      fill_normals(rng, out.data(), n);
      expect_bitwise_equal(out, ref, level_name(level));
    }
  }
}

TEST(SimdKernels, DeviceSamplingKernelsBitIdenticalAcrossLevels) {
  const std::size_t n = 333;
  util::Rng rng(0xD1CE);
  const auto zv = random_vec(rng, n, -3.0, 3.0);
  const auto zr = random_vec(rng, n, -3.0, 3.0);
  const auto zm = random_vec(rng, n, -3.0, 3.0);
  const auto base = random_vec(rng, n, 0.0, 1.0);
  OnCellParams p{/*i_on0=*/50e-6, /*don_dvth=*/-3e-5, /*don_dr=*/-1e-9,
                 /*sigma_vth=*/0.05, /*sigma_r_rel=*/0.08,
                 /*r_nominal=*/1e4, /*frac=*/0.7, /*mlc_sigma=*/0.02};

  std::vector<double> off_ref, on_ref;
  {
    ScopedLevel pin(IsaLevel::kScalar);
    off_ref = base;
    off_cell_accumulate(off_ref.data(), zv.data(), n, 1e-9, 0.3);
    on_ref = base;
    on_cell_accumulate(on_ref.data(), zv.data(), zr.data(), zm.data(), n, p);
  }
  for (const IsaLevel level : available_levels()) {
    ScopedLevel pin(level);
    ASSERT_TRUE(pin.ok());
    std::vector<double> off = base;
    off_cell_accumulate(off.data(), zv.data(), n, 1e-9, 0.3);
    expect_bitwise_equal(off, off_ref, "off_cell_accumulate");
    std::vector<double> on = base;
    on_cell_accumulate(on.data(), zv.data(), zr.data(), zm.data(), n, p);
    expect_bitwise_equal(on, on_ref, "on_cell_accumulate");
  }
}

TEST(SimdKernels, AxpySkipPreservesSkippedElement) {
  const std::size_t n = 37;
  util::Rng rng(0xA11);
  const auto x = random_vec(rng, n);
  const auto y0 = random_vec(rng, n);
  for (std::size_t skip = 0; skip < n; ++skip) {
    std::vector<double> y = y0;
    axpy_skip(y.data(), 1.5, x.data(), n, skip);
    EXPECT_EQ(y[skip], y0[skip]) << "skip=" << skip;
    for (std::size_t i = 0; i < n; ++i)
      if (i != skip) EXPECT_EQ(y[i], y0[i] + 1.5 * x[i]) << "i=" << i;
  }
}

TEST(SimdKernels, NormalsHaveStandardMoments) {
  const std::size_t n = 200000;
  std::vector<double> z(n);
  util::Rng rng(0x60055);
  fill_normals(rng, z.data(), n);
  double mean = 0.0;
  for (const double v : z) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const double v : z) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n - 1);
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

// The polynomial exp10 inside off_cell_accumulate must agree with libm
// std::pow(10, x) to ~1e-12 relative over the subthreshold operating range.
TEST(SimdKernels, OffCellLeakageMatchesLibmPow) {
  const double i_off0 = 1e-9, c = 0.4;
  for (double zvi = -3.0; zvi <= 3.0; zvi += 0.0917) {
    double sum = 0.0;
    off_cell_accumulate(&sum, &zvi, 1, i_off0, c);
    const double ref = i_off0 * std::pow(10.0, c * zvi);
    EXPECT_NEAR(sum, ref, 1e-12 * std::abs(ref)) << "zv=" << zvi;
  }
}

}  // namespace
}  // namespace cnash::simd
