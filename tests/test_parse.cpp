#include <gtest/gtest.h>

#include "game/games.hpp"
#include "game/parse.hpp"
#include "game/verify.hpp"

namespace cnash::game {
namespace {

constexpr const char* kBos = R"(# Battle of the Sexes
name: BoS
M:
2 0
0 1
N:
1 0
0 2
)";

TEST(Parse, ParsesWellFormedGame) {
  const BimatrixGame g = parse_game_text(kBos);
  EXPECT_EQ(g.name(), "BoS");
  EXPECT_EQ(g.num_actions1(), 2u);
  EXPECT_DOUBLE_EQ(g.payoff1()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.payoff2()(1, 1), 2.0);
  EXPECT_TRUE(is_nash_equilibrium(g, {1, 0}, {1, 0}));
}

TEST(Parse, CommentsAndBlankLinesIgnored) {
  const BimatrixGame g = parse_game_text(
      "\n# header\n\nM:\n# inner comment\n1 0\n0 1\n\nN:\n1 0\n0 1\n");
  EXPECT_EQ(g.num_actions1(), 2u);
}

TEST(Parse, DefaultNameWhenMissing) {
  const BimatrixGame g = parse_game_text("M:\n1\nN:\n1\n");
  EXPECT_EQ(g.name(), "unnamed");
}

TEST(Parse, NegativeAndFractionalPayoffs) {
  const BimatrixGame g =
      parse_game_text("M:\n-1.5 2e2\nN:\n0.25 -3\n");
  EXPECT_DOUBLE_EQ(g.payoff1()(0, 1), 200.0);
  EXPECT_DOUBLE_EQ(g.payoff2()(0, 0), 0.25);
}

TEST(Parse, ErrorsCarryLineNumbers) {
  try {
    parse_game_text("M:\n1 0\n0 x\nN:\n1 0\n0 1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Parse, RejectsStructuralErrors) {
  EXPECT_THROW(parse_game_text("1 2\n"), ParseError);       // row before header
  EXPECT_THROW(parse_game_text("M:\n1 2\n"), ParseError);   // missing N
  EXPECT_THROW(parse_game_text("M:\n1 2\n3\nN:\n1 2\n3 4\n"),
               ParseError);                                  // ragged M
  EXPECT_THROW(parse_game_text("M:\n1 2\nN:\n1 2 3\n"), ParseError);  // shapes
  EXPECT_THROW(parse_game_text("M:\nN:\n1\n"), ParseError);  // empty M
}

TEST(Parse, ErrorMessagesNameLineAndCause) {
  // The solve_file driver prints e.what() verbatim to the user, so the
  // message must locate the problem: a 1-based line number plus the cause.
  try {
    parse_game_text("M:\n1 2\nN:\n1 b\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("non-numeric"), std::string::npos) << msg;
  }
}

TEST(Parse, EveryMalformedInputThrowsParseError) {
  // The solve_file CLI path maps ParseError to "parse error in <file>: ..."
  // with exit code 2 — so malformed input must never surface as any other
  // exception type (or worse, a silently garbage game).
  const char* malformed[] = {
      "",                          // empty stream
      "name: x\n",                 // no matrices at all
      "1 2\n",                     // payoff row before any header
      "M:\n1 2\n",                 // missing N
      "N:\n1 2\n",                 // missing M
      "M:\nN:\n1\n",               // empty M
      "M:\n1 2\n3\nN:\n1 2\n3 4\n",  // ragged M
      "M:\n1 2\nN:\n1 2 3\n",      // M and N shapes differ
      "M:\n1 x\nN:\n1 2\n",        // non-numeric payoff
      "M:\n1 2\n\n \nN:\n1 2e\n",  // trailing junk on a number
  };
  for (const char* text : malformed) {
    try {
      parse_game_text(text);
      FAIL() << "accepted malformed input: " << text;
    } catch (const ParseError&) {
      // expected — the one type the CLI reports cleanly
    } catch (const std::exception& e) {
      FAIL() << "wrong exception type for: " << text << " — " << e.what();
    }
  }
}

TEST(Parse, SerializeRoundTripsLibraryGames) {
  for (const auto& g :
       {battle_of_sexes(), bird_game(), modified_prisoners_dilemma(),
        matching_pennies(), chicken()}) {
    const BimatrixGame back = parse_game_text(serialize_game(g));
    EXPECT_EQ(back.name(), g.name());
    ASSERT_EQ(back.num_actions1(), g.num_actions1());
    ASSERT_EQ(back.num_actions2(), g.num_actions2());
    for (std::size_t r = 0; r < g.num_actions1(); ++r)
      for (std::size_t c = 0; c < g.num_actions2(); ++c) {
        EXPECT_DOUBLE_EQ(back.payoff1()(r, c), g.payoff1()(r, c));
        EXPECT_DOUBLE_EQ(back.payoff2()(r, c), g.payoff2()(r, c));
      }
  }
}

}  // namespace
}  // namespace cnash::game
