#pragma once
// Shared harness for the solver-comparison benches (Table 1, Fig. 8, Fig. 9,
// Fig. 10): runs the three paper instances through C-Nash (full hardware
// model) and both D-Wave proxies, classifying every run against the exact
// ground truth.
//
// Scale note: the paper uses 5000 SA runs per instance; the default here is
// smaller so every bench binary finishes in seconds. Pass a run count as
// argv[1] to scale up (e.g. `bench_table1_success_rate 5000`).

#include <cstdlib>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "qubo/dwave_proxy.hpp"

namespace cnash::bench {

struct InstanceEvaluation {
  game::BenchmarkInstance instance;
  std::vector<game::Equilibrium> ground_truth;
  core::SolverReport cnash;
  core::SolverReport dwave_2000q;
  core::SolverReport dwave_advantage;
  std::size_t runs;
};

/// Paper-reported reference numbers (Table 1 / Fig. 10), kept alongside the
/// measured proxies; "-1" where the paper reports no value.
struct PaperReference {
  double success_2000q;
  double success_advantage;
  double success_cnash;
  double speedup_2000q;     // time-to-solution ratio vs C-Nash
  double speedup_advantage;
};

inline PaperReference paper_reference(std::size_t instance_index) {
  switch (instance_index) {
    case 0:
      return {99.62, 98.04, 100.0, 157.9, 79.0};
    case 1:
      return {88.16, 72.36, 88.94, 105.3, 52.6};
    default:
      return {-1.0, 13.30, 81.90, -1.0, 18.4};
  }
}

inline std::size_t runs_from_argv(int argc, char** argv,
                                  std::size_t default_runs) {
  if (argc > 1) {
    const long v = std::strtol(argv[1], nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return default_runs;
}

inline InstanceEvaluation evaluate_instance(
    const game::BenchmarkInstance& inst, std::size_t runs,
    std::uint64_t seed = 0xDA11A5) {
  InstanceEvaluation ev{inst, game::all_equilibria(inst.game), {}, {}, {}, runs};

  // --- C-Nash on the full hardware model. ---------------------------------
  core::CNashConfig cfg;
  cfg.intervals = inst.intervals;
  cfg.sa.iterations = inst.sa_iterations;
  cfg.seed = seed;
  core::CNashSolver solver(inst.game, cfg);
  std::vector<core::CandidateSolution> cnash_cands;
  for (const auto& o : solver.run(runs)) cnash_cands.push_back({o.p, o.q});
  ev.cnash = core::classify(inst.game, ev.ground_truth, cnash_cands, 1e-9);

  // --- D-Wave proxies. ------------------------------------------------------
  auto run_proxy = [&](const qubo::DWaveConfig& cfg_proxy) {
    util::Rng rng(seed ^ std::hash<std::string>{}(cfg_proxy.name));
    const qubo::DWaveProxy proxy(inst.game, cfg_proxy);
    std::vector<core::CandidateSolution> cands;
    for (const auto& s : proxy.run(runs, rng)) cands.push_back({s.p, s.q});
    return core::classify(inst.game, ev.ground_truth, cands, 1e-9);
  };
  ev.dwave_2000q = run_proxy(qubo::dwave_2000q6_config());
  ev.dwave_advantage = run_proxy(qubo::dwave_advantage41_config());
  return ev;
}

/// Default run counts per instance, sized so each bench finishes in seconds.
inline std::size_t default_runs_for(std::size_t instance_index) {
  return instance_index == 2 ? 60 : 200;
}

}  // namespace cnash::bench
