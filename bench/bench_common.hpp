#pragma once
// Shared harness for the solver-comparison benches (Table 1, Fig. 8, Fig. 9,
// Fig. 10): runs the three paper instances through C-Nash (full hardware
// model) and both D-Wave proxies, classifying every run against the exact
// ground truth.
//
// All three solver families dispatch through the shared core::SolverService
// as concurrent jobs — the pool schedules run-granular units across them
// (--threads N caps each job's in-flight units; default: all hardware
// threads) with bit-identical results for any thread count.
//
// Scale note: the paper uses 5000 SA runs per instance; the default here is
// smaller so every bench binary finishes in seconds. Pass a run count as the
// first positional argument to scale up (e.g.
// `bench_table1_success_rate 5000 --threads 8`).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "core/service.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "qubo/dwave_proxy.hpp"

// Git revision baked in by CMake so every BENCH_*.json is attributable to a
// commit when archived by CI.
#ifndef CNASH_GIT_SHA
#define CNASH_GIT_SHA "unknown"
#endif

namespace cnash::bench {

// ---- Machine-readable bench output (--json <path>) --------------------------
//
// Every bench can serialise its headline numbers (name, config, wall clock,
// iteration throughput, per-instance results) into a BENCH_*.json file so the
// perf trajectory is tracked across PRs by tooling instead of eyeballs.

/// Minimal ordered JSON tree: objects keep insertion order, numbers print
/// with round-trip precision. Only what the benches need — no parsing.
class Json {
 public:
  Json& set(const std::string& key, double v) {
    return child(key, make_number(v));
  }
  Json& set(const std::string& key, std::size_t v) {
    return set(key, static_cast<double>(v));
  }
  Json& set(const std::string& key, int v) {
    return set(key, static_cast<double>(v));
  }
  Json& set(const std::string& key, const std::string& v) {
    Json j;
    j.type_ = Type::kString;
    j.str_ = v;
    return child(key, std::move(j));
  }
  Json& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }
  Json& set(const std::string& key, bool v) {
    Json j;
    j.type_ = Type::kBool;
    j.flag_ = v;
    return child(key, std::move(j));
  }
  /// Nested object / array members (created on demand).
  Json& obj(const std::string& key) { return member(key, Type::kObject); }
  Json& arr(const std::string& key) { return member(key, Type::kArray); }
  /// Appends an object element to an array and returns it.
  Json& push() {
    Json j;
    j.type_ = Type::kObject;
    children_.emplace_back("", std::move(j));
    return children_.back().second;
  }

  std::string dump(int depth = 0) const {
    switch (type_) {
      case Type::kNumber: {
        // Infinite TTS (zero success rate) and the like have no JSON
        // representation — emit null so the artifact stays parseable.
        if (!std::isfinite(num_)) return "null";
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", num_);
        return buf;
      }
      case Type::kBool:
        return flag_ ? "true" : "false";
      case Type::kString:
        return quote(str_);
      case Type::kObject:
      case Type::kArray: {
        const bool is_obj = type_ == Type::kObject;
        std::string out(is_obj ? "{" : "[");
        for (std::size_t i = 0; i < children_.size(); ++i) {
          out += i ? ",\n" : "\n";
          out.append((depth + 1) * 2, ' ');
          if (is_obj) {
            out += quote(children_[i].first);
            out += ": ";
          }
          out += children_[i].second.dump(depth + 1);
        }
        if (!children_.empty()) {
          out += '\n';
          out.append(depth * 2, ' ');
        }
        out += is_obj ? '}' : ']';
        return out;
      }
    }
    return "null";
  }

 private:
  enum class Type { kObject, kArray, kNumber, kString, kBool };

  static Json make_number(double v) {
    Json j;
    j.type_ = Type::kNumber;
    j.num_ = v;
    return j;
  }
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
    return out;
  }
  Json& child(const std::string& key, Json&& j) {
    for (auto& kv : children_)
      if (kv.first == key) {
        kv.second = std::move(j);
        return *this;
      }
    children_.emplace_back(key, std::move(j));
    return *this;
  }
  Json& member(const std::string& key, Type t) {
    for (auto& kv : children_)
      if (kv.first == key) return kv.second;
    Json j;
    j.type_ = t;
    children_.emplace_back(key, std::move(j));
    return children_.back().second;
  }

  Type type_ = Type::kObject;
  double num_ = 0.0;
  bool flag_ = false;
  std::string str_;
  std::vector<std::pair<std::string, Json>> children_;
};

struct InstanceEvaluation {
  game::BenchmarkInstance instance;
  std::vector<game::Equilibrium> ground_truth;
  core::SolverReport cnash;
  core::SolverReport dwave_2000q;
  core::SolverReport dwave_advantage;
  std::size_t runs;
};

/// Paper-reported reference numbers (Table 1 / Fig. 10), kept alongside the
/// measured proxies; "-1" where the paper reports no value.
struct PaperReference {
  double success_2000q;
  double success_advantage;
  double success_cnash;
  double speedup_2000q;     // time-to-solution ratio vs C-Nash
  double speedup_advantage;
};

inline PaperReference paper_reference(std::size_t instance_index) {
  switch (instance_index) {
    case 0:
      return {99.62, 98.04, 100.0, 157.9, 79.0};
    case 1:
      return {88.16, 72.36, 88.94, 105.3, 52.6};
    default:
      return {-1.0, 13.30, 81.90, -1.0, 18.4};
  }
}

/// Command line shared by the solver benches:
/// `[runs] [--threads N] [--json <path>]`.
struct CliOptions {
  std::size_t runs = 0;     // 0 = per-instance default
  std::size_t threads = 0;  // 0 = one worker per hardware thread
  std::string json_path;    // empty = no JSON output
};

inline CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      cli.threads = std::strtoul(arg + 10, nullptr, 10);
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      cli.threads = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      cli.json_path = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      cli.json_path = argv[++i];
    } else {
      const long v = std::strtol(arg, nullptr, 10);
      if (v > 0) cli.runs = static_cast<std::size_t>(v);
    }
  }
  return cli;
}

/// Scoped JSON report: construct at bench start, fill root() with results,
/// call finish() last. Writes BENCH_<name>.json under --json <path> (a file
/// path, or a directory to use the default name); without --json it is a
/// no-op. `wall_clock_s` covers construct→finish; pass the total iteration
/// count (e.g. SA runs) to also record throughput.
class JsonReport {
 public:
  JsonReport(std::string name, const CliOptions& cli)
      : name_(std::move(name)),
        path_(cli.json_path),
        start_(std::chrono::steady_clock::now()) {
    root_.set("bench", name_);
    root_.set("git_sha", CNASH_GIT_SHA);
    Json& cfg = root_.obj("config");
    cfg.set("runs", cli.runs);
    cfg.set("threads", cli.threads);
    const unsigned hw = std::thread::hardware_concurrency();
    cfg.set("threads_resolved",
            cli.threads > 0 ? cli.threads
                            : static_cast<std::size_t>(hw > 0 ? hw : 1));
  }

  Json& root() { return root_; }

  bool finish(double iterations = 0.0) {
    if (path_.empty()) return true;
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    root_.set("wall_clock_s", dt);
    if (iterations > 0.0 && dt > 0.0)
      root_.set("iterations_per_sec", iterations / dt);
    std::string path = path_;
    struct stat st{};
    const bool is_dir =
        path.back() == '/' ||
        (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode));
    if (is_dir) {
      if (path.back() != '/') path += '/';
      path += "BENCH_" + name_ + ".json";
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::string text = root_.dump();
    text += '\n';
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  Json root_;
};

/// Kept for drivers that only take a run count.
inline std::size_t runs_from_argv(int argc, char** argv,
                                  std::size_t default_runs) {
  const CliOptions cli = parse_cli(argc, argv);
  return cli.runs > 0 ? cli.runs : default_runs;
}

inline InstanceEvaluation evaluate_instance(
    const game::BenchmarkInstance& inst, std::size_t runs,
    std::size_t threads = 0, std::uint64_t seed = 0xDA11A5) {
  InstanceEvaluation ev{inst, game::all_equilibria(inst.game), {}, {}, {}, runs};

  // All three solver jobs go through the shared SolverService concurrently;
  // the pool schedules run-granular units across them. Results are
  // bit-identical for any pool size / --threads cap (keyed per-unit streams).
  // Platform-stable seed derivation per backend (std::hash is
  // implementation-defined and would make archived bench numbers differ
  // across standard libraries).
  auto mix_seed = [](std::uint64_t seed_in, const std::string& tag) {
    std::uint64_t state = seed_in;
    for (const unsigned char c : tag) {
      state ^= c;
      state = util::splitmix64(state);
    }
    return state;
  };
  auto request_for = [&](const std::string& backend) {
    core::SolveRequest req(inst.game);
    req.backend = backend;
    req.runs = runs;
    // The proxies get stream families of their own, like the pre-service
    // drivers that seeded each proxy per solver name.
    req.seed = backend == "hardware-sa" ? seed : mix_seed(seed, backend);
    req.intervals = inst.intervals;
    req.sa.iterations = inst.sa_iterations;
    req.max_parallelism = threads;
    return req;
  };
  core::SolverService& service = core::SolverService::shared();
  auto cnash = service.submit(request_for("hardware-sa"));
  auto dwave_2000q = service.submit(request_for("dwave-2000q6"));
  auto dwave_advantage = service.submit(request_for("dwave-advantage41"));

  auto classify_report = [&](const core::SolveReport& report) {
    std::vector<core::CandidateSolution> cands;
    cands.reserve(report.samples.size());
    for (const auto& s : report.samples) cands.push_back({s.p, s.q});
    return core::classify(inst.game, ev.ground_truth, cands, 1e-9);
  };
  ev.cnash = classify_report(cnash.get());
  ev.dwave_2000q = classify_report(dwave_2000q.get());
  ev.dwave_advantage = classify_report(dwave_advantage.get());
  return ev;
}

/// Default run counts per instance, sized so each bench finishes in seconds.
inline std::size_t default_runs_for(std::size_t instance_index) {
  return instance_index == 2 ? 60 : 200;
}

/// One-line JSON serialisation of an instance evaluation, shared by the
/// solver-comparison benches.
inline void report_instance(Json& node, const InstanceEvaluation& ev) {
  node.set("game", ev.instance.game.name());
  node.set("runs", ev.runs);
  node.set("ground_truth_ne", ev.ground_truth.size());
  auto solver = [&](const std::string& key, const char* backend,
                    const core::SolverReport& r) {
    Json& s = node.obj(key);
    s.set("backend", backend);
    s.set("success_rate", r.success_rate());
    s.set("distinct_found", r.distinct_found());
  };
  solver("cnash", "hardware-sa", ev.cnash);
  solver("dwave_2000q", "dwave-2000q6", ev.dwave_2000q);
  solver("dwave_advantage", "dwave-advantage41", ev.dwave_advantage);
}

}  // namespace cnash::bench
