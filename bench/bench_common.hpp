#pragma once
// Shared harness for the solver-comparison benches (Table 1, Fig. 8, Fig. 9,
// Fig. 10): runs the three paper instances through C-Nash (full hardware
// model) and both D-Wave proxies, classifying every run against the exact
// ground truth.
//
// C-Nash runs dispatch through core::SolverEngine, so they spread across
// worker threads (--threads N, default: all hardware threads) with
// bit-identical results for any thread count.
//
// Scale note: the paper uses 5000 SA runs per instance; the default here is
// smaller so every bench binary finishes in seconds. Pass a run count as the
// first positional argument to scale up (e.g.
// `bench_table1_success_rate 5000 --threads 8`).

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "qubo/dwave_proxy.hpp"

namespace cnash::bench {

struct InstanceEvaluation {
  game::BenchmarkInstance instance;
  std::vector<game::Equilibrium> ground_truth;
  core::SolverReport cnash;
  core::SolverReport dwave_2000q;
  core::SolverReport dwave_advantage;
  std::size_t runs;
};

/// Paper-reported reference numbers (Table 1 / Fig. 10), kept alongside the
/// measured proxies; "-1" where the paper reports no value.
struct PaperReference {
  double success_2000q;
  double success_advantage;
  double success_cnash;
  double speedup_2000q;     // time-to-solution ratio vs C-Nash
  double speedup_advantage;
};

inline PaperReference paper_reference(std::size_t instance_index) {
  switch (instance_index) {
    case 0:
      return {99.62, 98.04, 100.0, 157.9, 79.0};
    case 1:
      return {88.16, 72.36, 88.94, 105.3, 52.6};
    default:
      return {-1.0, 13.30, 81.90, -1.0, 18.4};
  }
}

/// Command line shared by the solver benches: `[runs] [--threads N]`.
struct CliOptions {
  std::size_t runs = 0;     // 0 = per-instance default
  std::size_t threads = 0;  // 0 = one worker per hardware thread
};

inline CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      cli.threads = std::strtoul(arg + 10, nullptr, 10);
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      cli.threads = std::strtoul(argv[++i], nullptr, 10);
    } else {
      const long v = std::strtol(arg, nullptr, 10);
      if (v > 0) cli.runs = static_cast<std::size_t>(v);
    }
  }
  return cli;
}

/// Kept for drivers that only take a run count.
inline std::size_t runs_from_argv(int argc, char** argv,
                                  std::size_t default_runs) {
  const CliOptions cli = parse_cli(argc, argv);
  return cli.runs > 0 ? cli.runs : default_runs;
}

inline InstanceEvaluation evaluate_instance(
    const game::BenchmarkInstance& inst, std::size_t runs,
    std::size_t threads = 0, std::uint64_t seed = 0xDA11A5) {
  InstanceEvaluation ev{inst, game::all_equilibria(inst.game), {}, {}, {}, runs};

  // --- C-Nash on the full hardware model, across the engine's pool. --------
  core::EngineOptions opts;
  opts.intervals = inst.intervals;
  opts.sa.iterations = inst.sa_iterations;
  opts.seed = seed;
  opts.threads = threads;
  auto factory = std::make_shared<core::HardwareEvaluatorFactory>(
      inst.game, inst.intervals, core::TwoPhaseConfig{}, util::Rng(seed));
  core::SolverEngine engine(std::move(factory), opts);
  std::vector<core::CandidateSolution> cnash_cands;
  for (const auto& o : engine.run(runs)) cnash_cands.push_back({o.p, o.q});
  ev.cnash = core::classify(inst.game, ev.ground_truth, cnash_cands, 1e-9);

  // --- D-Wave proxies. ------------------------------------------------------
  auto run_proxy = [&](const qubo::DWaveConfig& cfg_proxy) {
    util::Rng rng(seed ^ std::hash<std::string>{}(cfg_proxy.name));
    const qubo::DWaveProxy proxy(inst.game, cfg_proxy);
    std::vector<core::CandidateSolution> cands;
    for (const auto& s : proxy.run(runs, rng)) cands.push_back({s.p, s.q});
    return core::classify(inst.game, ev.ground_truth, cands, 1e-9);
  };
  ev.dwave_2000q = run_proxy(qubo::dwave_2000q6_config());
  ev.dwave_advantage = run_proxy(qubo::dwave_advantage41_config());
  return ev;
}

/// Default run counts per instance, sized so each bench finishes in seconds.
inline std::size_t default_runs_for(std::size_t instance_index) {
  return instance_index == 2 ? 60 : 200;
}

}  // namespace cnash::bench
