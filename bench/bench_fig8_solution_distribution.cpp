// Fig. 8: distribution of solutions (error / pure NE / mixed NE fractions)
// found by each Nash solver across all SA runs, per game.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  std::printf("=== Fig. 8: Solution Distributions (error / pure / mixed) ===\n\n");
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  bench::JsonReport report("fig8_solution_distribution", cli);
  std::size_t total_runs = 0;
  const auto instances = game::paper_benchmarks();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::size_t runs =
        cli.runs > 0 ? cli.runs : bench::default_runs_for(i);
    std::fprintf(stderr, "running %s (%zu runs)...\n",
                 instances[i].game.name().c_str(), runs);
    const auto ev = bench::evaluate_instance(instances[i], runs, cli.threads);
    total_runs += 3 * runs;
    bench::Json& node = report.root().arr("instances").push();
    bench::report_instance(node, ev);
    node.obj("cnash").set("mixed_fraction", ev.cnash.mixed_fraction());
    node.obj("cnash").set("error_fraction", ev.cnash.error_fraction());

    std::printf("--- (%c) %s ---\n", static_cast<char>('a' + i),
                instances[i].game.name().c_str());
    util::Table table({"solver", "error %", "pure NE %", "mixed NE %"});
    auto add = [&](const std::string& name, const core::SolverReport& r) {
      table.add_row({name, core::percent(r.error_fraction()),
                     core::percent(r.pure_fraction()),
                     core::percent(r.mixed_fraction())});
    };
    add("D-Wave 2000 Q6 (proxy)", ev.dwave_2000q);
    add("D-Wave Advantage 4.1 (proxy)", ev.dwave_advantage);
    add("C-Nash (this work)", ev.cnash);
    std::printf("%s\n", table.pretty().c_str());
  }
  std::printf(
      "Paper shape: only C-Nash reports a non-zero mixed-NE share; the\n"
      "S-QUBO solvers are structurally pure-only and their error share grows\n"
      "with problem size.\n");
  report.finish(static_cast<double>(total_runs));
  return 0;
}
