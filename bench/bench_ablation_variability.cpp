// Ablation: device non-idealities vs solver quality. Sweeps the FeFET V_TH
// variability (and with it the crossbar read error) and the WTA offset, and
// measures the C-Nash success rate on the Bird Game — quantifying how much
// analog imperfection the architecture tolerates.

#include <cstdio>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  const std::size_t runs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;
  const auto g = game::bird_game();
  const auto gt = game::all_equilibria(g);

  std::printf("=== Ablation: analog non-idealities (%s, %zu runs each) ===\n\n",
              g.name().c_str(), runs);
  util::Table table({"sigma(V_TH) (mV)", "WTA offset %", "success %",
                     "distinct found", "error %"});

  const double vth_sweeps[] = {0.0, 0.04, 0.08, 0.16};
  const double wta_sweeps[] = {0.0, 0.0025, 0.01};
  for (const double sigma_vth : vth_sweeps) {
    for (const double wta_offset : wta_sweeps) {
      core::CNashConfig cfg;
      cfg.intervals = 12;
      cfg.sa.iterations = 8000;
      cfg.seed = 9000 + static_cast<std::uint64_t>(sigma_vth * 1e4) +
                 static_cast<std::uint64_t>(wta_offset * 1e5);
      cfg.hardware.array.variability.sigma_vth = sigma_vth;
      cfg.hardware.array.ideal = (sigma_vth == 0.0);
      cfg.hardware.wta.offset_sigma = wta_offset;
      core::CNashSolver solver(g, cfg);
      std::vector<core::CandidateSolution> cands;
      for (const auto& o : solver.run(runs)) cands.push_back({o.p, o.q});
      const auto r = core::classify(g, gt, cands, 1e-9);
      table.add_row({util::Table::num(sigma_vth * 1e3, 0),
                     util::Table::num(wta_offset * 100, 2),
                     core::percent(r.success_rate()),
                     std::to_string(r.distinct_found()) + "/7",
                     core::percent(r.error_fraction())});
    }
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "Shape: success degrades gracefully up to several times the nominal\n"
      "sigma(V_TH) = 40 mV / 0.25%% WTA offset used in the paper's setup.\n");
  return 0;
}
