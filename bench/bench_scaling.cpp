// Scaling study (beyond the paper's three fixed instances): C-Nash success
// rate, distinct-solution coverage and modelled time-to-solution on random
// coordination games of growing size — the regime where the paper argues
// S-QUBO solvers collapse.

#include <cmath>
#include <cstdio>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "core/timing.hpp"
#include "game/random_games.hpp"
#include "game/support_enum.hpp"
#include "qubo/dwave_proxy.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  const std::size_t runs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  std::printf("=== Scaling: random coordination games, %zu runs each ===\n\n",
              runs);
  util::Table table({"actions", "ground-truth NE", "C-Nash success %",
                     "C-Nash distinct", "C-Nash TTS (s)",
                     "Advantage-proxy success %"});

  const core::CNashTimingModel timing;
  util::Rng game_rng(4242);
  for (const std::size_t n : {2u, 3u, 4u, 5u, 6u}) {
    // Integer diagonal payoffs keep the crossbar mapping exact.
    game::BimatrixGame g = [&] {
      la::Matrix a(n, n, 0.0);
      for (std::size_t i = 0; i < n; ++i)
        a(i, i) = static_cast<double>(2 + game_rng.uniform_index(5));
      return game::BimatrixGame(a, a.transposed(),
                                "coord-" + std::to_string(n));
    }();
    const auto gt = game::all_equilibria(g);

    const std::uint32_t intervals = 24;  // random-diagonal mixed NE rarely sit
    // exactly on this grid, so success counts eps-NE with eps = the grid's
    // intrinsic payoff resolution (range / I).
    core::CNashConfig cfg;
    cfg.intervals = intervals;
    cfg.sa.iterations = 4000 * n;
    cfg.seed = 6000 + n;
    core::CNashSolver solver(g, cfg);
    std::vector<core::CandidateSolution> cands;
    for (const auto& o : solver.run(runs)) cands.push_back({o.p, o.q});
    const double grid_eps =
        (g.payoff1().max_element() - g.payoff1().min_element()) / intervals;
    const auto r = core::classify(g, gt, cands, grid_eps, 2.0 / intervals);

    const auto& geom = solver.hardware()->crossbar_m().mapping().geometry();
    const double tts = timing.time_to_solution_s(geom, cfg.sa.iterations,
                                                 r.success_rate());

    util::Rng rng(6100 + n);
    const qubo::DWaveProxy proxy(g, qubo::dwave_advantage41_config());
    std::vector<core::CandidateSolution> dcands;
    for (const auto& s : proxy.run(runs, rng)) dcands.push_back({s.p, s.q});
    const auto dr = core::classify(g, gt, dcands, grid_eps, 2.0 / intervals);

    table.add_row({std::to_string(n), std::to_string(gt.size()),
                   core::percent(r.success_rate()),
                   std::to_string(r.distinct_found()) + "/" +
                       std::to_string(gt.size()),
                   std::isfinite(tts) ? util::Table::num(tts, 4) : "-",
                   core::percent(dr.success_rate())});
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "Shape: C-Nash success decays gently with size while the S-QUBO proxy\n"
      "falls off a cliff once the slack encoding outgrows its precision.\n");
  return 0;
}
