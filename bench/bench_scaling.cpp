// Scaling study (beyond the paper's three fixed instances), three axes:
//
//  1. Problem size: C-Nash success rate, distinct-solution coverage and
//     modelled time-to-solution on random coordination games of growing size
//     — the regime where the paper argues S-QUBO solvers collapse.
//  2. Host parallelism: wall-clock speedup of a fixed batch of
//     hardware-evaluator runs on the shared SolverService pool, with the
//     per-job in-flight cap swept 1..N (identical outcomes at every cap —
//     only the clock moves).
//  3. Evaluation path: SA wall clock on the full hardware model with the
//     incremental propose/commit fast path (O(m+n) crossbar delta reads per
//     move) versus the full O(n·m) re-read per iteration, on games up to
//     64 actions.
//
// Usage: bench_scaling [runs] [--threads N] [--json <path>]
//   runs       SA runs per game size in the size sweep (default 60)
//   --threads  max worker threads for both sweeps (default: all hw threads)
//   --json     write machine-readable results to BENCH_*.json

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "core/timing.hpp"
#include "game/random_games.hpp"
#include "game/support_enum.hpp"
#include "qubo/dwave_proxy.hpp"
#include "util/table.hpp"

namespace {

double seconds_to_run(cnash::core::SolverEngine& engine, std::size_t runs) {
  const auto t0 = std::chrono::steady_clock::now();
  engine.run(runs);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cnash;

  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  bench::JsonReport report("scaling", cli);
  const std::size_t runs = cli.runs > 0 ? cli.runs : 60;

  // ---- Axis 1: problem size. ----------------------------------------------
  std::printf("=== Scaling: random coordination games, %zu runs each ===\n\n",
              runs);
  util::Table table({"actions", "ground-truth NE", "C-Nash success %",
                     "C-Nash distinct", "C-Nash TTS (s)",
                     "Advantage-proxy success %"});

  const core::CNashTimingModel timing;
  util::Rng game_rng(4242);
  for (const std::size_t n : {2u, 3u, 4u, 5u, 6u}) {
    // Integer diagonal payoffs keep the crossbar mapping exact.
    game::BimatrixGame g = [&] {
      la::Matrix a(n, n, 0.0);
      for (std::size_t i = 0; i < n; ++i)
        a(i, i) = static_cast<double>(2 + game_rng.uniform_index(5));
      return game::BimatrixGame(a, a.transposed(),
                                "coord-" + std::to_string(n));
    }();
    const auto gt = game::all_equilibria(g);

    const std::uint32_t intervals = 24;  // random-diagonal mixed NE rarely sit
    // exactly on this grid, so success counts eps-NE with eps = the grid's
    // intrinsic payoff resolution (range / I).
    core::EngineOptions opts;
    opts.intervals = intervals;
    opts.sa.iterations = 4000 * n;
    opts.seed = 6000 + n;
    opts.threads = cli.threads;
    auto factory = std::make_shared<core::HardwareEvaluatorFactory>(
        g, intervals, core::TwoPhaseConfig{}, util::Rng(opts.seed));
    const auto probe = factory->create_hardware(core::kProbeInstanceKey);
    const xbar::MappingGeometry geom = probe->crossbar_m().mapping().geometry();
    core::SolverEngine engine(factory, opts);
    std::vector<core::CandidateSolution> cands;
    for (const auto& o : engine.run(runs)) cands.push_back({o.p, o.q});
    const double grid_eps =
        (g.payoff1().max_element() - g.payoff1().min_element()) / intervals;
    const auto r = core::classify(g, gt, cands, grid_eps, 2.0 / intervals);

    const double tts = timing.time_to_solution_s(geom, opts.sa.iterations,
                                                 r.success_rate());

    util::Rng rng(6100 + n);
    const qubo::DWaveProxy proxy(g, qubo::dwave_advantage41_config());
    std::vector<core::CandidateSolution> dcands;
    for (const auto& s : proxy.run(runs, rng)) dcands.push_back({s.p, s.q});
    const auto dr = core::classify(g, gt, dcands, grid_eps, 2.0 / intervals);

    table.add_row({std::to_string(n), std::to_string(gt.size()),
                   core::percent(r.success_rate()),
                   std::to_string(r.distinct_found()) + "/" +
                       std::to_string(gt.size()),
                   std::isfinite(tts) ? util::Table::num(tts, 4) : "-",
                   core::percent(dr.success_rate())});
    bench::Json& node = report.root().arr("size_sweep").push();
    node.set("actions", n);
    node.set("backend", "hardware-sa");
    node.set("cnash_success_rate", r.success_rate());
    node.set("dwave_advantage_success_rate", dr.success_rate());
    node.set("cnash_tts_s", tts);
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "Shape: C-Nash success decays gently with size while the S-QUBO proxy\n"
      "falls off a cliff once the slack encoding outgrows its precision.\n\n");

  // ---- Axis 2: engine thread scaling. -------------------------------------
  // A fixed batch of hardware-evaluator runs, timed at growing worker counts.
  // Outcomes are bit-identical at every thread count (keyed per-run RNG
  // streams), so the speedup column is a pure wall-clock measurement.
  const std::size_t batch = 64;
  const game::BimatrixGame g = game::bird_game();
  auto make_engine = [&](std::size_t threads) {
    core::EngineOptions opts;
    opts.intervals = 12;
    opts.sa.iterations = 4000;
    opts.seed = 0x5CA1E;
    opts.threads = threads;
    return core::SolverEngine(
        std::make_shared<core::HardwareEvaluatorFactory>(
            g, opts.intervals, core::TwoPhaseConfig{}, util::Rng(opts.seed)),
        opts);
  };

  std::size_t max_threads = cli.threads;
  if (max_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    max_threads = hw > 0 ? hw : 1;
  }

  std::printf("=== Engine thread scaling: %zu hardware-evaluator runs ===\n\n",
              batch);
  util::Table scaling({"threads", "wall clock (s)", "speedup", "runs/s"});
  std::vector<std::size_t> sweep;
  for (std::size_t threads = 1; threads < max_threads; threads *= 2)
    sweep.push_back(threads);
  sweep.push_back(max_threads);  // always measure the requested maximum
  double t1 = 0.0;
  for (const std::size_t threads : sweep) {
    auto engine = make_engine(threads);
    const double dt = seconds_to_run(engine, batch);
    if (threads == 1) t1 = dt;
    scaling.add_row({std::to_string(threads), util::Table::num(dt, 3),
                     util::Table::num(t1 / dt, 2) + "X",
                     util::Table::num(batch / dt, 1)});
    bench::Json& node = report.root().arr("thread_sweep").push();
    node.set("backend", "hardware-sa");
    node.set("threads", threads);
    node.set("wall_clock_s", dt);
    node.set("runs_per_sec", batch / dt);
  }
  std::printf("%s\n", scaling.pretty().c_str());
  std::printf(
      "Expected: near-linear speedup to the physical core count (runs are\n"
      "independent; evaluator instances are thread-confined by design).\n\n");

  // ---- Axis 3: incremental vs full two-phase evaluation. ------------------
  // Single-threaded SA on the full hardware model, growing action counts:
  // the full path re-reads every block of both crossbars each iteration
  // (O(n·m) table walks), the incremental path applies O(m+n) delta reads
  // per tick move. Same device sampling, same SA seed on both sides.
  std::printf("=== Hardware evaluation path: incremental vs full re-read ===\n\n");
  util::Table hw({"actions", "SA iters", "full (s)", "incremental (s)",
                  "speedup", "Δ objective"});
  util::Rng hw_game_rng(7311);
  for (const std::size_t n : {8u, 16u, 32u, 64u, 96u}) {
    game::BimatrixGame g = [&] {
      la::Matrix a(n, n, 0.0);
      for (std::size_t i = 0; i < n; ++i)
        a(i, i) = static_cast<double>(2 + hw_game_rng.uniform_index(5));
      return game::BimatrixGame(a, a.transposed(),
                                "coord-" + std::to_string(n));
    }();
    const std::uint32_t intervals = 12;
    core::SaOptions sa;
    sa.iterations = 20000;

    auto timed_run = [&](bool incremental, double* objective) {
      core::TwoPhaseConfig cfg;
      cfg.incremental = incremental;
      core::TwoPhaseEvaluator hw_eval(g, intervals, cfg, util::Rng(808));
      util::Rng sa_rng(909);
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = core::simulated_annealing(hw_eval, intervals, sa, sa_rng);
      const auto t1 = std::chrono::steady_clock::now();
      *objective = res.final_objective;
      return std::chrono::duration<double>(t1 - t0).count();
    };

    double f_full = 0.0, f_inc = 0.0;
    const double dt_full = timed_run(false, &f_full);
    const double dt_inc = timed_run(true, &f_inc);
    hw.add_row({std::to_string(n), std::to_string(sa.iterations),
                util::Table::num(dt_full, 3), util::Table::num(dt_inc, 3),
                util::Table::num(dt_full / dt_inc, 1) + "X",
                util::Table::num(std::abs(f_full - f_inc), 6)});
    bench::Json& node = report.root().arr("hw_path_sweep").push();
    node.set("actions", n);
    node.set("sa_iterations", sa.iterations);
    node.set("full_wall_clock_s", dt_full);
    node.set("incremental_wall_clock_s", dt_inc);
    node.set("speedup", dt_full / dt_inc);
    node.set("iters_per_sec_incremental", sa.iterations / dt_inc);
  }
  std::printf("%s\n", hw.pretty().c_str());
  std::printf(
      "Both paths run the same noise/ADC pipeline per scoring; Δ objective\n"
      "is the (ADC-LSB-scale) divergence from incremental fp accumulation.\n");
  report.finish();
  return 0;
}
