// Serving-gateway load generator: boots in-process NashServers on ephemeral
// loopback ports and sweeps a client-concurrency grid over them —
// serve_threads {1, 4} × connections {1, 8, 64} — with a closed-loop driver
// (one request outstanding per connection, one client thread per connection)
// so latency percentiles are true per-request round trips under concurrency.
//
//   * cold phase  — every request unique → full solve path (once per server);
//   * warm sweep  — the batch replicated to >= 256 requests, every request a
//                   cache hit: requests/s and p50/p95/p99 latency per
//                   (serve_threads, connections) cell, plus one binary-framing
//                   cell to compare framings on the same cache.
//
// The headline `warm_speedup` is warm req/s at (serve_threads 4, 64
// connections) over the single-threaded baseline (serve_threads 1, one
// synchronous connection). `hardware_threads` rides along in the JSON: on a
// single-core host the sweep degenerates to syscall-batching gains only.
//
// Usage: bench_serve_throughput [requests-per-class] [--threads N]
//                               [--json <path>]   (BENCH_serve_throughput.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "game/parse.hpp"
#include "game/random_games.hpp"
#include "serve/line_client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace {

using cnash::bench::Json;
using cnash::serve::LineClient;

struct RequestClass {
  std::string label;
  std::string backend;
  std::size_t actions;
  std::size_t runs;
  std::size_t iterations;
};

/// Request body without the trailing "}" — the driver appends its own id.
std::string solve_body(const RequestClass& cls,
                       const cnash::game::BimatrixGame& g, std::uint64_t seed) {
  std::string body = "{\"method\":\"solve\"";
  body += ",\"game_text\":" +
          cnash::util::Json::string(cnash::game::serialize_game(g)).dump();
  body += ",\"backend\":\"" + cls.backend + "\"";
  body += ",\"runs\":" + std::to_string(cls.runs);
  body += ",\"iterations\":" + std::to_string(cls.iterations);
  body += ",\"seed\":" + std::to_string(seed);
  return body;
}

struct PhaseResult {
  double wall_s = 0.0;
  std::size_t responses = 0;
  std::size_t errors = 0;
  std::size_t cached = 0;
  std::vector<double> latencies;  // successful responses, sorted by finish()

  double rps() const {
    return wall_s > 0.0 ? static_cast<double>(responses) / wall_s : 0.0;
  }
  double percentile(double p) const {  // nearest-rank on the sorted vector
    if (latencies.empty()) return 0.0;
    const double rank = p * static_cast<double>(latencies.size() - 1);
    return latencies[static_cast<std::size_t>(rank + 0.5)];
  }
  double mean() const {
    if (latencies.empty()) return 0.0;
    double total = 0.0;
    for (double l : latencies) total += l;
    return total / static_cast<double>(latencies.size());
  }
};

/// Closed-loop drive: `connections` client threads, each with its own
/// connection and one request outstanding, splitting `bodies` round-robin.
/// Latency is the synchronous submit→response round trip.
PhaseResult drive(std::uint16_t port, std::size_t connections,
                  const std::vector<std::string>& bodies, bool binary) {
  using clock = std::chrono::steady_clock;
  const std::size_t conns = std::min(std::max<std::size_t>(1, connections),
                                     bodies.size());
  std::vector<PhaseResult> shards(conns);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  const auto start = clock::now();
  for (std::size_t t = 0; t < conns; ++t)
    threads.emplace_back([&, t] {
      PhaseResult& shard = shards[t];
      LineClient client;
      if (!client.connect_to(port)) {
        std::fprintf(stderr, "bench_serve_throughput: connect failed\n");
        std::exit(1);
      }
      std::string line, response;
      for (std::size_t i = t; i < bodies.size(); i += conns) {
        line = bodies[i];
        line += ",\"id\":0}";
        const auto sent = clock::now();
        bool got;
        if (binary) {
          unsigned char type = 0;
          got = client.send_frame(cnash::serve::kFrameSolve, line) &&
                client.recv_frame(type, response);
        } else {
          got = client.send_line(line) && client.recv_line(response);
        }
        if (!got) {
          std::fprintf(stderr, "bench_serve_throughput: connection lost\n");
          std::exit(1);
        }
        const double latency =
            std::chrono::duration<double>(clock::now() - sent).count();
        const cnash::util::Json parsed = cnash::util::Json::parse(response);
        shard.responses++;
        if (!parsed.at("ok").as_bool()) {
          shard.errors++;
          continue;
        }
        if (parsed.at("cached").as_bool()) shard.cached++;
        shard.latencies.push_back(latency);
      }
    });
  for (std::thread& t : threads) t.join();

  PhaseResult result;
  result.wall_s = std::chrono::duration<double>(clock::now() - start).count();
  for (PhaseResult& shard : shards) {
    result.responses += shard.responses;
    result.errors += shard.errors;
    result.cached += shard.cached;
    result.latencies.insert(result.latencies.end(), shard.latencies.begin(),
                            shard.latencies.end());
  }
  std::sort(result.latencies.begin(), result.latencies.end());
  return result;
}

void report_phase(Json& node, const PhaseResult& r) {
  node.set("responses", r.responses);
  node.set("errors", r.errors);
  node.set("cached", r.cached);
  node.set("wall_s", r.wall_s);
  node.set("requests_per_sec", r.rps());
  Json& lat = node.obj("latency_s");
  lat.set("mean", r.mean());
  lat.set("p50", r.percentile(0.50));
  lat.set("p95", r.percentile(0.95));
  lat.set("p99", r.percentile(0.99));
  lat.set("max", r.latencies.empty() ? 0.0 : r.latencies.back());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cnash;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  const std::size_t per_class = cli.runs > 0 ? cli.runs : 8;
  constexpr std::size_t kClasses = 5;  // must match `classes` below
  constexpr std::size_t kWarmTarget = 256;  // minimum warm requests per cell
  bench::JsonReport report("serve_throughput", cli);

  // Mixed game-size / backend classes: the small-and-exact end answers in
  // microseconds, the hardware end exercises crossbar programming — together
  // they approximate a production mix where cheap and expensive solves share
  // the queue.
  const std::vector<RequestClass> classes = {
      {"exact_sa_2", "exact-sa", 2, 8, 400},
      {"exact_sa_16", "exact-sa", 16, 4, 400},
      {"lemke_howson_12", "lemke-howson", 12, 1, 0},
      {"hardware_sa_4", "hardware-sa", 4, 4, 300},
      {"hardware_sa_tiled_8", "hardware-sa-tiled", 8, 2, 300},
  };
  if (classes.size() != kClasses) {
    std::fprintf(stderr, "bench_serve_throughput: kClasses out of sync\n");
    return 1;
  }

  util::Rng rng(0x5EEDBEEF);
  std::vector<std::string> bodies;
  for (const RequestClass& cls : classes)
    for (std::size_t i = 0; i < per_class; ++i) {
      // Hardware backends want integer-codeable payoffs; the software
      // backends get covariant games (the harder, generic mix).
      game::BimatrixGame g =
          cls.backend.rfind("hardware", 0) == 0
              ? game::random_integer_game(cls.actions, cls.actions, rng)
              : game::random_covariant_game(cls.actions, cls.actions, 0.0, rng);
      bodies.push_back(solve_body(cls, g, /*seed=*/1000 + i));
    }
  // Warm cells replay the cached batch enough times to be statistically
  // meaningful (>= kWarmTarget requests per cell).
  std::vector<std::string> warm_bodies;
  const std::size_t reps = (kWarmTarget + bodies.size() - 1) / bodies.size();
  warm_bodies.reserve(reps * bodies.size());
  for (std::size_t r = 0; r < reps; ++r)
    warm_bodies.insert(warm_bodies.end(), bodies.begin(), bodies.end());

  const std::vector<std::size_t> serve_thread_grid = {1, 4};
  const std::vector<std::size_t> connection_grid = {1, 8, 64};

  Json& root = report.root();
  root.set("requests_per_class", per_class);
  root.set("warm_requests", warm_bodies.size());
  root.set("hardware_threads",
           static_cast<std::size_t>(std::thread::hardware_concurrency()));
  Json& classes_json = root.arr("classes");
  for (const RequestClass& cls : classes) {
    Json& c = classes_json.push();
    c.set("label", cls.label);
    c.set("backend", cls.backend);
    c.set("actions", cls.actions);
    c.set("runs", cls.runs);
  }
  Json& sweep = root.arr("sweep");

  double baseline_rps = 0.0;  // serve_threads 1, one connection
  double headline_rps = 0.0;  // serve_threads 4, 64 connections
  bool ok = true;
  for (const std::size_t serve_threads : serve_thread_grid) {
    serve::ServeOptions options;
    options.serve_threads = serve_threads;
    options.service_threads = cli.threads;
    // This bench measures throughput and cache behavior, not shedding:
    // admission is sized to the offered load (every request must be
    // admitted).
    options.admission.max_queue_depth = warm_bodies.size() + 16;
    options.admission.per_connection_inflight = warm_bodies.size() + 16;
    serve::NashServer server(options);
    server.start();
    std::thread server_thread([&] { server.run(); });

    Json& group = sweep.push();
    group.set("serve_threads", serve_threads);

    const PhaseResult cold = drive(server.port(), 4, bodies, /*binary=*/false);
    report_phase(group.obj("cold"), cold);
    std::printf("serve_threads %zu  cold: %.1f req/s, p95 %.5f s, "
                "%zu errors\n",
                serve_threads, cold.rps(), cold.percentile(0.95), cold.errors);
    ok = ok && cold.errors == 0;

    Json& warm_json = group.arr("warm");
    for (const std::size_t connections : connection_grid) {
      const PhaseResult warm =
          drive(server.port(), connections, warm_bodies, /*binary=*/false);
      Json& cell = warm_json.push();
      cell.set("connections", connections);
      cell.set("framing", "json-lines");
      report_phase(cell, warm);
      std::printf("serve_threads %zu  warm x%-2zu conns: %8.1f req/s, "
                  "p50 %.6f s, p95 %.6f s, p99 %.6f s, %zu/%zu cached\n",
                  serve_threads, connections, warm.rps(), warm.percentile(0.5),
                  warm.percentile(0.95), warm.percentile(0.99), warm.cached,
                  warm.responses);
      ok = ok && warm.errors == 0 && warm.cached == warm.responses;
      if (serve_threads == 1 && connections == 1) baseline_rps = warm.rps();
      if (serve_threads == 4 && connections == 64) headline_rps = warm.rps();
    }

    // One binary-framing cell against the same warm cache: same bodies, the
    // length-prefixed framing instead of JSON lines.
    if (serve_threads == serve_thread_grid.back()) {
      const PhaseResult warm_bin =
          drive(server.port(), 8, warm_bodies, /*binary=*/true);
      Json& cell = warm_json.push();
      cell.set("connections", std::size_t{8});
      cell.set("framing", "binary");
      report_phase(cell, warm_bin);
      std::printf("serve_threads %zu  warm x8  conns: %8.1f req/s "
                  "(binary framing), %zu/%zu cached\n",
                  serve_threads, warm_bin.rps(), warm_bin.cached,
                  warm_bin.responses);
      ok = ok && warm_bin.errors == 0 && warm_bin.cached == warm_bin.responses;
    }

    // Server-side counters, recorded per group.
    {
      LineClient probe;
      std::string stats_line;
      if (probe.connect_to(server.port()) &&
          probe.send_line("{\"method\":\"stats\"}") &&
          probe.recv_line(stats_line)) {
        const util::Json stats = util::Json::parse(stats_line);
        const util::Json& cache = stats.at("stats").at("cache");
        const util::Json& served = stats.at("stats").at("served");
        Json& cache_json = group.obj("cache");
        for (const char* key :
             {"hits", "misses", "insertions", "evictions", "oversize_rejects",
              "entries", "bytes", "byte_budget"})
          cache_json.set(key, cache.at(key).as_number());
        // The tier-2 store block rides along verbatim (all-zero with
        // enabled=false here — this bench runs RAM-only — but the schema
        // matches a gateway booted with --store-dir).
        const util::Json& store = stats.at("stats").at("store");
        Json& store_json = group.obj("store");
        store_json.set("enabled", store.at("enabled").as_bool());
        for (const char* key :
             {"hits", "misses", "appends", "tombstones", "evictions",
              "oversize_rejects", "compactions", "entries", "segments",
              "live_raw_bytes", "live_value_bytes", "live_stored_bytes",
              "dead_stored_bytes", "compressed_records", "stored_records",
              "corrupt_records_skipped", "torn_tail_truncations",
              "byte_budget", "compression_ratio"})
          store_json.set(key, store.at(key).as_number());
        group.set("fair_deferrals", served.at("fair_deferrals").as_number());
      }

      // Server-side per-stage latency quantiles (the metrics registry's
      // always-on histograms), recorded beside the client-side latencies:
      // parse vs cache-lookup cost straight from the server's own clocks.
      std::string metrics_line;
      if (probe.send_line("{\"method\":\"metrics\"}") &&
          probe.recv_line(metrics_line)) {
        const util::Json metrics =
            util::Json::parse(metrics_line).at("metrics");
        const util::Json& histograms = metrics.at("histograms");
        Json& stages = group.obj("server_stages");
        for (const char* name :
             {"cnash_stage_parse_seconds", "cnash_stage_canonicalize_seconds",
              "cnash_stage_cache_lookup_seconds", "cnash_stage_admit_seconds",
              "cnash_stage_render_seconds", "cnash_stage_flush_seconds",
              "cnash_request_handle_seconds", "cnash_stage_prepare_seconds",
              "cnash_stage_unit_seconds", "cnash_stage_queue_wait_seconds",
              "cnash_solve_wall_seconds"}) {
          const util::Json* h = histograms.find(name);
          if (!h) continue;
          Json& stage = stages.obj(name);
          for (const char* field : {"count", "sum", "p50", "p95", "p99"})
            stage.set(field, h->at(field).as_number());
        }
      }
    }

    server.request_stop();
    server_thread.join();
  }

  if (baseline_rps > 0.0 && headline_rps > 0.0)
    root.set("warm_speedup", headline_rps / baseline_rps);
  std::printf("warm_speedup (serve_threads 4 x 64 conns over single-threaded "
              "1-conn baseline): %.2fx\n",
              baseline_rps > 0.0 ? headline_rps / baseline_rps : 0.0);
  report.finish(
      static_cast<double>(2 * (bodies.size() + 3 * warm_bodies.size()) +
                          warm_bodies.size()));

  if (!ok) {
    std::fprintf(stderr, "bench_serve_throughput: FAILED (errors or warm "
                 "misses — see counters above)\n");
    return 1;
  }
  return 0;
}
