// Serving-gateway load generator: boots an in-process NashServer on an
// ephemeral loopback port, drives it from pipelined client connections with a
// mixed batch of game sizes and backends, and measures
//
//   * cold phase  — every request unique → full solve path: requests/s and
//                   mean/max response latency per backend/size class;
//   * warm phase  — the identical batch again → every request a cache hit:
//                   cache-hit latency vs. the cold-solve latency and the
//                   hit-rate counters from the server's `stats` method.
//
// Usage: bench_serve_throughput [requests-per-class] [--threads N]
//                               [--json <path>]   (BENCH_serve_throughput.json)

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "game/parse.hpp"
#include "game/random_games.hpp"
#include "serve/line_client.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace {

using cnash::bench::Json;
using cnash::serve::LineClient;

struct RequestClass {
  std::string label;
  std::string backend;
  std::size_t actions;
  std::size_t runs;
  std::size_t iterations;
};

std::string solve_line(const RequestClass& cls, const cnash::game::BimatrixGame& g,
                       std::uint64_t seed, int id) {
  std::string line = "{\"method\":\"solve\",\"id\":" + std::to_string(id);
  line += ",\"game_text\":" +
          cnash::util::Json::string(cnash::game::serialize_game(g)).dump();
  line += ",\"backend\":\"" + cls.backend + "\"";
  line += ",\"runs\":" + std::to_string(cls.runs);
  line += ",\"iterations\":" + std::to_string(cls.iterations);
  line += ",\"seed\":" + std::to_string(seed);
  line += "}";
  return line;
}

struct PhaseResult {
  double wall_s = 0.0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;
  std::size_t responses = 0;
  std::size_t errors = 0;
  std::size_t cached = 0;
};

/// Sends every line and waits for all responses (pipelined per connection,
/// round-robin across the pool). Latency is per-request submit→response.
PhaseResult drive(std::vector<LineClient>& pool,
                  const std::vector<std::string>& lines) {
  using clock = std::chrono::steady_clock;
  PhaseResult result;
  const auto start = clock::now();
  std::vector<clock::time_point> sent(lines.size());
  double total_latency = 0.0;
  // Per-connection FIFO: responses on one connection come back in completion
  // order; ids map them back to their submit times.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    LineClient& client = pool[i % pool.size()];
    sent[i] = clock::now();
    if (!client.send_line(lines[i])) {
      std::fprintf(stderr, "bench_serve_throughput: submit failed\n");
      std::exit(1);
    }
  }
  for (std::size_t c = 0; c < pool.size(); ++c) {
    const std::size_t owed = lines.size() / pool.size() +
                             (c < lines.size() % pool.size() ? 1 : 0);
    for (std::size_t k = 0; k < owed; ++k) {
      std::string line;
      if (!pool[c].recv_line(line)) {
        std::fprintf(stderr, "bench_serve_throughput: connection lost\n");
        std::exit(1);
      }
      const auto now = clock::now();
      const cnash::util::Json response = cnash::util::Json::parse(line);
      result.responses++;
      if (!response.at("ok").as_bool()) {
        result.errors++;
        continue;
      }
      if (response.at("cached").as_bool()) result.cached++;
      const std::size_t id =
          static_cast<std::size_t>(response.at("id").as_number());
      const double latency =
          std::chrono::duration<double>(now - sent[id]).count();
      total_latency += latency;
      if (latency > result.max_latency_s) result.max_latency_s = latency;
    }
  }
  result.wall_s = std::chrono::duration<double>(clock::now() - start).count();
  if (result.responses > result.errors)
    result.mean_latency_s =
        total_latency / static_cast<double>(result.responses - result.errors);
  return result;
}

void report_phase(Json& node, const PhaseResult& r) {
  node.set("responses", r.responses);
  node.set("errors", r.errors);
  node.set("cached", r.cached);
  node.set("wall_s", r.wall_s);
  node.set("requests_per_sec",
           r.wall_s > 0.0 ? static_cast<double>(r.responses) / r.wall_s : 0.0);
  node.set("mean_latency_s", r.mean_latency_s);
  node.set("max_latency_s", r.max_latency_s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cnash;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  const std::size_t per_class = cli.runs > 0 ? cli.runs : 8;
  constexpr std::size_t kClasses = 5;  // must match `classes` below
  bench::JsonReport report("serve_throughput", cli);

  serve::ServeOptions options;
  options.service_threads = cli.threads;
  // This bench measures throughput and cache behavior, not shedding: the
  // load generator pipelines the whole batch up front, so admission is
  // sized to the offered load (every request must be admitted).
  const std::size_t total_requests = kClasses * per_class;
  options.admission.max_queue_depth = total_requests + 16;
  options.admission.per_connection_inflight = total_requests + 16;
  serve::NashServer server(options);
  server.start();
  std::thread server_thread([&] { server.run(); });

  // Mixed game-size / backend classes: the small-and-exact end answers in
  // microseconds, the hardware end exercises crossbar programming — together
  // they approximate a production mix where cheap and expensive solves share
  // the queue.
  const std::vector<RequestClass> classes = {
      {"exact_sa_2", "exact-sa", 2, 8, 400},
      {"exact_sa_16", "exact-sa", 16, 4, 400},
      {"lemke_howson_12", "lemke-howson", 12, 1, 0},
      {"hardware_sa_4", "hardware-sa", 4, 4, 300},
      {"hardware_sa_tiled_8", "hardware-sa-tiled", 8, 2, 300},
  };
  if (classes.size() != kClasses) {
    std::fprintf(stderr, "bench_serve_throughput: kClasses out of sync\n");
    return 1;
  }

  util::Rng rng(0x5EEDBEEF);
  std::vector<std::string> lines;
  int id = 0;
  for (const RequestClass& cls : classes)
    for (std::size_t i = 0; i < per_class; ++i) {
      // Hardware backends want integer-codeable payoffs; the software
      // backends get covariant games (the harder, generic mix).
      game::BimatrixGame g =
          cls.backend.rfind("hardware", 0) == 0
              ? game::random_integer_game(cls.actions, cls.actions, rng)
              : game::random_covariant_game(cls.actions, cls.actions, 0.0, rng);
      lines.push_back(solve_line(cls, g, /*seed=*/1000 + i, id++));
    }

  std::vector<LineClient> pool(4);
  for (LineClient& client : pool)
    if (!client.connect_to(server.port())) {
      std::fprintf(stderr, "bench_serve_throughput: connect failed\n");
      return 1;
    }

  std::printf("serving %zu requests (%zu classes x %zu) on port %u\n",
              lines.size(), classes.size(), per_class, server.port());

  const PhaseResult cold = drive(pool, lines);
  std::printf("cold: %.1f req/s, mean latency %.4f s, max %.4f s, "
              "%zu errors\n",
              cold.responses / cold.wall_s, cold.mean_latency_s,
              cold.max_latency_s, cold.errors);

  const PhaseResult warm = drive(pool, lines);
  std::printf("warm: %.1f req/s, mean latency %.6f s, max %.6f s, "
              "%zu cached of %zu\n",
              warm.responses / warm.wall_s, warm.mean_latency_s,
              warm.max_latency_s, warm.cached, warm.responses);

  // Server-side counters over the wire, recorded into the JSON artifact.
  std::string stats_line;
  pool[0].send_line("{\"method\":\"stats\"}");
  pool[0].recv_line(stats_line);
  const util::Json stats = util::Json::parse(stats_line);

  server.request_stop();
  server_thread.join();

  Json& root = report.root();
  root.set("port", static_cast<std::size_t>(server.port()));
  root.set("connections", pool.size());
  root.set("requests_per_class", per_class);
  Json& classes_json = root.arr("classes");
  for (const RequestClass& cls : classes) {
    Json& c = classes_json.push();
    c.set("label", cls.label);
    c.set("backend", cls.backend);
    c.set("actions", cls.actions);
    c.set("runs", cls.runs);
  }
  report_phase(root.obj("cold"), cold);
  report_phase(root.obj("warm"), warm);
  if (cold.mean_latency_s > 0.0 && warm.mean_latency_s > 0.0)
    root.set("cache_speedup", cold.mean_latency_s / warm.mean_latency_s);
  const util::Json& cache = stats.at("stats").at("cache");
  Json& cache_json = root.obj("cache");
  cache_json.set("hits", cache.at("hits").as_number());
  cache_json.set("misses", cache.at("misses").as_number());
  cache_json.set("entries", cache.at("entries").as_number());
  cache_json.set("bytes", cache.at("bytes").as_number());
  report.finish(static_cast<double>(cold.responses + warm.responses));

  const bool ok = cold.errors == 0 && warm.errors == 0 &&
                  warm.cached == warm.responses;
  if (!ok) {
    std::fprintf(stderr,
                 "bench_serve_throughput: FAILED (cold errors %zu, warm "
                 "errors %zu, warm cached %zu/%zu)\n",
                 cold.errors, warm.errors, warm.cached, warm.responses);
    return 1;
  }
  return 0;
}
