// Ablation: objective fidelity of the transformations. Compares, for every
// ground-truth equilibrium and for random non-equilibria:
//  * MAX-QUBO (C-Nash, lossless): f = 0 exactly at NE, > 0 elsewhere;
//  * S-QUBO (per-row and aggregate slack styles): the slack penalties distort
//    the landscape so the minimum-energy assignment need not be an NE.
// Quantifies the paper's core argument for the lossless transformation.

#include <cstdio>

#include "core/maxqubo.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "qubo/annealer.hpp"
#include "qubo/squbo_builder.hpp"
#include "util/table.hpp"

int main() {
  using namespace cnash;

  std::printf("=== Ablation: MAX-QUBO vs S-QUBO objective fidelity ===\n\n");
  util::Table table({"game", "transformation", "ground-state is NE",
                     "best-found energy", "energy of best pure NE"});

  for (const auto& inst : game::paper_benchmarks()) {
    const auto& g = inst.game;
    const auto gt = game::all_equilibria(g);

    for (const auto style :
         {qubo::SlackStyle::kPerRow, qubo::SlackStyle::kAggregate}) {
      qubo::SQuboOptions opts;
      opts.style = style;
      const qubo::SQubo sq(g, opts);
      util::Rng rng(31);
      // Deep anneal to approximate the S-QUBO ground state.
      double best_e = 1e100;
      qubo::Bits best_state;
      for (int rep = 0; rep < 40; ++rep) {
        const auto res = qubo::anneal(sq.model(), {5.0, 0.01, 500}, rng);
        if (res.best_energy < best_e) {
          best_e = res.best_energy;
          best_state = res.best_state;
        }
      }
      const auto d = sq.decode(best_state);
      const bool ground_is_ne =
          d.valid_strategies && game::is_nash_equilibrium(g, d.p, d.q, 1e-6);

      // Energy of the best *true* pure NE under the S-QUBO objective, with
      // the auxiliary bits optimised by annealing from a clamped state.
      double best_ne_energy = 1e100;
      for (const auto& eq : gt) {
        if (!eq.pure) continue;
        qubo::Bits x(sq.num_vars(), 0);
        for (std::size_t i = 0; i < g.num_actions1(); ++i)
          if (eq.p[i] > 0.5) x[i] = 1;
        for (std::size_t j = 0; j < g.num_actions2(); ++j)
          if (eq.q[j] > 0.5) x[g.num_actions1() + j] = 1;
        // Optimise the auxiliary (level/slack) bits by annealing a copy of
        // the model with the strategy bits frozen through large biases.
        qubo::QuboModel clamped = sq.model();
        const double big = 100.0 * clamped.max_abs_coefficient();
        for (std::size_t b = 0; b < g.num_actions1() + g.num_actions2(); ++b)
          clamped.add_linear(b, x[b] ? -big : big);
        qubo::Bits best_aux = x;
        double best_clamped = 1e100;
        for (int rep = 0; rep < 10; ++rep) {
          const auto res = qubo::anneal(clamped, {5.0, 0.01, 300}, rng);
          if (res.best_energy < best_clamped) {
            best_clamped = res.best_energy;
            best_aux = res.best_state;
          }
        }
        // Restore the strategy bits (the clamp makes them optimal anyway).
        for (std::size_t b = 0; b < g.num_actions1() + g.num_actions2(); ++b)
          best_aux[b] = x[b];
        best_ne_energy = std::min(best_ne_energy, sq.energy(best_aux));
      }

      table.add_row({g.name(),
                     style == qubo::SlackStyle::kPerRow ? "S-QUBO (per-row)"
                                                        : "S-QUBO (aggregate)",
                     ground_is_ne ? "yes" : "NO (distorted)",
                     util::Table::num(best_e, 3),
                     util::Table::num(best_ne_energy, 3)});
    }

    // MAX-QUBO: verify f = 0 at all NE and f > 0 at grid non-NE.
    core::ExactMaxQubo f(g);
    double worst_at_ne = 0.0;
    for (const auto& eq : gt)
      worst_at_ne =
          std::max(worst_at_ne, std::abs(f.evaluate_continuous(eq.p, eq.q)));
    table.add_row({g.name(), "MAX-QUBO (C-Nash)", "yes (lossless)",
                   util::Table::num(worst_at_ne, 9), "0 by construction"});
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "When the S-QUBO ground state's strategy decoding is not an NE, the\n"
      "slack transformation has produced a 'fake' optimum — the failure mode\n"
      "the paper attributes the D-Wave success-rate collapse to.\n");
  return 0;
}
