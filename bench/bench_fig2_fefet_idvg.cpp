// Fig. 2(b)/(d): FeFET I_D-V_G characteristics for both stored states across
// 60 devices with sigma(V_TH) = 40 mV — bare FeFET vs 1FeFET1R — showing the
// ON-current variability suppression by the series resistor.

#include <cstdio>
#include <vector>

#include "fefet/cell_1t1r.hpp"
#include "fefet/fefet.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace cnash;

  constexpr int kDevices = 60;
  const fefet::FeFetParams fp;
  const fefet::VariabilityParams vp;
  util::Rng rng(2);

  std::vector<double> dvth(kDevices);
  for (auto& d : dvth) d = rng.normal(0.0, vp.sigma_vth);

  std::printf("=== Fig. 2(b): bare FeFET I_D-V_G, %d devices ===\n", kDevices);
  util::Table bare({"V_G (V)", "state '1' median I_D (A)", "'1' spread (x)",
                    "state '0' median I_D (A)"});
  for (double vg = 0.0; vg <= 2.01; vg += 0.25) {
    std::vector<double> on, off;
    for (int d = 0; d < kDevices; ++d) {
      on.push_back(
          fefet::FeFet(fp.vth_low + dvth[d], fp).drain_current(vg, 0.8));
      off.push_back(
          fefet::FeFet(fp.vth_high + dvth[d], fp).drain_current(vg, 0.8));
    }
    const double p50 = util::percentile(on, 50);
    const double spread = util::percentile(on, 95) / util::percentile(on, 5);
    char c1[32], c2[32], c3[32];
    std::snprintf(c1, sizeof c1, "%.2f", vg);
    std::snprintf(c2, sizeof c2, "%.3e", p50);
    std::snprintf(c3, sizeof c3, "%.3e", util::percentile(off, 50));
    bare.add_row({c1, c2, util::Table::num(spread, 2), c3});
  }
  std::printf("%s\n", bare.pretty().c_str());

  std::printf("=== Fig. 2(d): 1FeFET1R read currents, %d devices ===\n",
              kDevices);
  util::RunningStats bare_on, cell_on;
  for (int d = 0; d < kDevices; ++d) {
    bare_on.add(fefet::FeFet(fp.vth_low + dvth[d], fp).drain_current(1.0, 0.8));
    const fefet::Cell1T1R cell(
        true, fefet::sample_cell(vp, rng), fp);
    cell_on.add(cell.read(true, true));
  }
  std::printf("bare FeFET ON:  mean %.3e A, rel sigma %.1f %%\n", bare_on.mean(),
              100.0 * bare_on.stddev() / bare_on.mean());
  std::printf("1FeFET1R ON:    mean %.3e A, rel sigma %.1f %%\n", cell_on.mean(),
              100.0 * cell_on.stddev() / cell_on.mean());
  std::printf("suppression:    %.1fx lower relative ON-current spread\n",
              (bare_on.stddev() / bare_on.mean()) /
                  (cell_on.stddev() / cell_on.mean()));
  return 0;
}
