// Fig. 7(a): Monte-Carlo linearity of a 64x64 crossbar — output current vs
// number of activated cells in a column, 100 runs with sigma(V_TH) = 40 mV
// and 8 % resistor variability.

#include <cstdio>
#include <vector>

#include "fefet/cell_1t1r.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace cnash;

  constexpr int kRuns = 100;
  constexpr int kColumnCells = 64;
  const fefet::FeFetParams fp;
  const fefet::VariabilityParams vp;

  std::printf(
      "=== Fig. 7(a): 64x64 crossbar column current vs activated cells, "
      "%d Monte-Carlo runs ===\n",
      kRuns);
  util::Table table({"activated cells", "mean I (uA)", "sigma (uA)",
                     "linearity error %"});

  util::Rng rng(7);
  // Each Monte-Carlo run programs a fresh column of 64 stored-'1' cells.
  std::vector<std::vector<double>> cell_currents(kRuns);
  for (int r = 0; r < kRuns; ++r) {
    cell_currents[r].reserve(kColumnCells);
    for (int c = 0; c < kColumnCells; ++c) {
      const fefet::Cell1T1R cell(true, fefet::sample_cell(vp, rng), fp);
      cell_currents[r].push_back(cell.read(true, true));
    }
  }
  const double unit = fefet::nominal_on_current(fp, vp);

  double worst_err = 0.0;
  for (int active = 8; active <= kColumnCells; active += 8) {
    util::RunningStats stats;
    for (int r = 0; r < kRuns; ++r) {
      double sum = 0.0;
      for (int c = 0; c < active; ++c) sum += cell_currents[r][c];
      stats.add(sum);
    }
    const double ideal = unit * active;
    const double err = 100.0 * std::abs(stats.mean() - ideal) / ideal;
    worst_err = std::max(worst_err, err);
    table.add_row({std::to_string(active), util::Table::num(stats.mean() * 1e6, 3),
                   util::Table::num(stats.stddev() * 1e6, 4),
                   util::Table::num(err, 3)});
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf("worst mean deviation from the ideal line: %.3f %% -> %s\n",
              worst_err, worst_err < 2.0 ? "robust linearity (paper: good "
                                           "linearity w.r.t. activated cells)"
                                         : "NON-LINEAR");
  return 0;
}
