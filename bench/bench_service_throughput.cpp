// SolverService throughput: jobs/s for mixed game-size batches.
//
// A batch of independent solve jobs — games from 2 to 12 actions, mixed
// across the hardware-sa / exact-sa / dwave-advantage41 backends — is
// submitted to one SolverService and drained, at growing pool sizes. Because
// the pool schedules run-granular units ACROSS jobs, a large job never
// serialises the batch behind it: the jobs/s column should scale with the
// worker count until the physical core count, and the per-job results are
// bit-identical at every pool size (keyed per-unit streams).
//
// Usage: bench_service_throughput [jobs] [--threads N] [--json <path>]
//   jobs       batch size (default 24; the mix cycles game sizes and backends)
//   --threads  largest pool size to sweep (default: all hardware threads)
//   --json     write machine-readable results to BENCH_*.json

#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/service.hpp"
#include "game/games.hpp"
#include "game/random_games.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct JobSpec {
  cnash::game::BimatrixGame game;
  std::string backend;
  std::size_t runs;
};

std::vector<JobSpec> make_batch(std::size_t jobs) {
  using namespace cnash;
  // Mixed sizes AND mixed scenario families: the fixed paper instances,
  // coordination games to 12 actions, iterated-dominance-solvable games
  // (unique pure equilibrium; integer payoffs, so they exercise the tiled
  // hardware backend) and covariant games sweeping the zero-sum ->
  // common-interest correlation axis.
  util::Rng gen_rng(0xD0151);
  const std::vector<game::BimatrixGame> games = {
      game::battle_of_sexes(),
      game::random_dominance_solvable_game(5, 4, gen_rng),
      game::coordination(4),
      game::random_covariant_game(6, 6, -1.0, gen_rng),
      game::bird_game(),
      game::random_dominance_solvable_game(8, 8, gen_rng),
      game::coordination(8),
      game::random_covariant_game(5, 7, 0.0, gen_rng),
      game::chicken(),
      game::random_covariant_game(8, 8, 0.9, gen_rng),
      game::coordination(12)};
  const std::vector<std::pair<std::string, std::size_t>> backends = {
      {"hardware-sa", 6}, {"exact-sa", 8}, {"dwave-advantage41", 40},
      {"hardware-sa-tiled", 6}};
  std::vector<JobSpec> batch;
  batch.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    auto [backend, runs] = backends[i % backends.size()];
    game::BimatrixGame g = games[i % games.size()];
    // The hardware backends need integer payoffs; continuous covariant games
    // route to the software/annealer families instead.
    const bool integer_ok = g.name().rfind("random-covariant", 0) != 0;
    if (!integer_ok && backend.rfind("hardware", 0) == 0) backend = "exact-sa";
    batch.push_back({std::move(g), backend, runs});
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cnash;

  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  bench::JsonReport report("service_throughput", cli);
  const std::size_t jobs = cli.runs > 0 ? cli.runs : 24;

  std::size_t max_threads = cli.threads;
  if (max_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    max_threads = hw > 0 ? hw : 1;
  }

  const std::vector<JobSpec> batch = make_batch(jobs);
  std::printf(
      "=== SolverService throughput: %zu mixed jobs "
      "(2..12 actions, 4 backends, dominance/covariant scenarios) ===\n\n",
      jobs);

  util::Table table({"pool threads", "wall clock (s)", "jobs/s", "speedup"});
  std::vector<std::size_t> sweep;
  for (std::size_t t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);

  std::size_t baseline_nash = 0;
  double t1 = 0.0;
  for (const std::size_t threads : sweep) {
    core::SolverService service(core::ServiceOptions{threads});
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<core::SolveReport>> futures;
    futures.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      core::SolveRequest req(batch[i].game);
      req.backend = batch[i].backend;
      req.runs = batch[i].runs;
      req.seed = 0x7B0 + i;
      req.sa.iterations = 1200;
      futures.push_back(service.submit(std::move(req)));
    }
    std::size_t nash_total = 0;
    for (auto& f : futures) nash_total += f.get().nash_count;
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (threads == sweep.front()) {
      t1 = dt;
      baseline_nash = nash_total;
    } else if (nash_total != baseline_nash) {
      // Keyed per-unit streams make this impossible; fail loudly if not.
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %zu threads found %zu NE vs %zu\n",
                   threads, nash_total, baseline_nash);
      return 1;
    }

    const double jps = static_cast<double>(jobs) / dt;
    table.add_row({std::to_string(threads), util::Table::num(dt, 3),
                   util::Table::num(jps, 2),
                   util::Table::num(t1 / dt, 2) + "X"});
    bench::Json& node = report.root().arr("pool_sweep").push();
    node.set("threads", threads);
    node.set("wall_clock_s", dt);
    node.set("jobs_per_sec", jps);
    node.set("nash_total", nash_total);
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "Run-granular scheduling: every worker stays busy until the batch tail,\n"
      "so mixed job sizes do not serialise behind the largest game.\n");

  bench::Json& mix = report.root().obj("mix");
  mix.set("jobs", jobs);
  bench::Json& backends = mix.arr("backends");
  for (const char* b : {"hardware-sa", "exact-sa", "dwave-advantage41",
                        "hardware-sa-tiled"}) {
    bench::Json& node = backends.push();
    node.set("backend", b);
  }
  report.finish(static_cast<double>(jobs * sweep.size()));
  return 0;
}
