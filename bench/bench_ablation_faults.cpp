// Ablation: stuck-at cell faults vs solver quality, and the silicon-area cost
// of each benchmark macro. Quantifies how many dead/shorted cells the
// bi-crossbar tolerates before the MAX-QUBO landscape degrades, and what the
// Fig. 4 mapping costs in µm² per game.

#include <cstdio>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "util/table.hpp"
#include "xbar/area.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  const std::size_t runs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;

  std::printf("=== Ablation: stuck-at faults (%s, %zu runs each) ===\n\n",
              game::bird_game().name().c_str(), runs);
  util::Table faults({"stuck-off %", "stuck-on %", "success %",
                      "distinct found", "error %"});
  const double rates[] = {0.0, 0.001, 0.005, 0.02, 0.05};
  const auto g = game::bird_game();
  const auto gt = game::all_equilibria(g);
  for (const double off : rates) {
    for (const double on : {0.0, off}) {
      core::CNashConfig cfg;
      cfg.intervals = 12;
      cfg.sa.iterations = 8000;
      cfg.seed = 4100 + static_cast<std::uint64_t>(off * 1e4) +
                 static_cast<std::uint64_t>(on * 1e5);
      cfg.hardware.array.stuck_off_rate = off;
      cfg.hardware.array.stuck_on_rate = on;
      core::CNashSolver solver(g, cfg);
      std::vector<core::CandidateSolution> cands;
      for (const auto& o : solver.run(runs)) cands.push_back({o.p, o.q});
      const auto r = core::classify(g, gt, cands, 1e-9);
      faults.add_row({util::Table::num(off * 100, 2),
                      util::Table::num(on * 100, 2),
                      core::percent(r.success_rate()),
                      std::to_string(r.distinct_found()) + "/7",
                      core::percent(r.error_fraction())});
    }
  }
  std::printf("%s\n", faults.pretty().c_str());

  std::printf("=== Macro area per benchmark game (28 nm-class model) ===\n\n");
  util::Table area({"game", "array (um2)", "drivers", "ADC+WTA+sense",
                    "SA logic", "total (mm2)"});
  const xbar::AreaModel model;
  for (const auto& inst : game::paper_benchmarks()) {
    const auto shifted = inst.game.shifted_non_negative(0.0);
    const auto t_m =
        static_cast<std::uint32_t>(shifted.payoff1().max_element());
    const auto t_nt =
        static_cast<std::uint32_t>(shifted.payoff2().max_element());
    const xbar::MappingGeometry gm{inst.game.num_actions1(),
                                   inst.game.num_actions2(), inst.intervals,
                                   std::max(t_m, 1u)};
    const xbar::MappingGeometry gnt{inst.game.num_actions2(),
                                    inst.game.num_actions1(), inst.intervals,
                                    std::max(t_nt, 1u)};
    const auto a = model.macro(gm, gnt);
    area.add_row({inst.game.name(), util::Table::num(a.array_um2, 1),
                  util::Table::num(a.drivers_um2, 1),
                  util::Table::num(a.adc_um2 + a.wta_um2 + a.sense_um2, 1),
                  util::Table::num(a.logic_um2, 1),
                  util::Table::num(a.total_um2() / 1e6, 4)});
  }
  std::printf("%s\n", area.pretty().c_str());
  std::printf(
      "Shape: sub-0.1%% fault rates are invisible; percent-level stuck-off\n"
      "rates distort the analog objective enough to cost success rate.\n");
  return 0;
}
