// Table 1: success rates of finding an NE solution, three games x three
// solvers. D-Wave rows show the behavioural proxy (measured) next to the
// literature values the paper reports.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  std::printf("=== Table 1: Success Rates of Finding an NE Solution ===\n\n");
  util::Table table({"Nash solver", "Battle of the Sexes (2 actions)",
                     "Bird Game (3 actions)",
                     "Modified Prisoner's Dilemma (8 actions)"});

  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  bench::JsonReport report("table1_success_rate", cli);
  std::size_t total_runs = 0;
  const auto instances = game::paper_benchmarks();
  std::vector<bench::InstanceEvaluation> evals;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::size_t runs =
        cli.runs > 0 ? cli.runs : bench::default_runs_for(i);
    std::fprintf(stderr, "running %s (%zu runs)...\n",
                 instances[i].game.name().c_str(), runs);
    evals.push_back(bench::evaluate_instance(instances[i], runs, cli.threads));
    bench::report_instance(report.root().arr("instances").push(), evals.back());
    total_runs += 3 * runs;
  }

  auto row = [&](const std::string& name,
                 auto&& getter) -> std::vector<std::string> {
    std::vector<std::string> cells{name};
    for (const auto& ev : evals)
      cells.push_back(core::percent(getter(ev).success_rate()));
    return cells;
  };
  table.add_row(row("D-Wave 2000 Q6 (proxy, measured)",
                    [](const auto& ev) { return ev.dwave_2000q; }));
  table.add_row(row("D-Wave Advantage 4.1 (proxy, measured)",
                    [](const auto& ev) { return ev.dwave_advantage; }));
  table.add_row(row("C-Nash (this work, measured)",
                    [](const auto& ev) { return ev.cnash; }));

  std::vector<std::string> lit1{"D-Wave 2000 Q6 (paper, literature)"};
  std::vector<std::string> lit2{"D-Wave Advantage 4.1 (paper)"};
  std::vector<std::string> lit3{"C-Nash (paper)"};
  for (std::size_t i = 0; i < evals.size(); ++i) {
    const auto ref = bench::paper_reference(i);
    lit1.push_back(ref.success_2000q < 0 ? "-"
                                         : util::Table::num(ref.success_2000q, 2));
    lit2.push_back(util::Table::num(ref.success_advantage, 2));
    lit3.push_back(util::Table::num(ref.success_cnash, 2));
  }
  table.add_row(lit1);
  table.add_row(lit2);
  table.add_row(lit3);

  std::printf("%s\n", table.pretty().c_str());
  std::printf("Ground-truth targets: %zu / %zu / %zu equilibria "
              "(paper: 3 / 6 / 25 — see DESIGN.md on the reconstruction).\n",
              evals[0].ground_truth.size(), evals[1].ground_truth.size(),
              evals[2].ground_truth.size());
  report.finish(static_cast<double>(total_runs));
  return 0;
}
