// Tier-2 store benchmark: drives src/store/ with real solved reports — the
// exact bytes the serving gateway persists — across a mixed 5-class backend /
// game-size load, and measures the three paths that matter in production:
//
//   * cold write   — put() throughput (records/s, raw MB/s) writing every
//                    report through the codec into fresh segments;
//   * warm restart — close, reopen the same directory (recovery scan timed
//                    separately) and read every key back, verifying each
//                    value byte-identical to what was written;
//   * compact      — supersede half the keys to build dead weight, then
//                    compact and report reclaimed bytes and wall time.
//
// The headline `compression_ratio` (live raw bytes over live stored bytes)
// must exceed 1.0 on this load: report JSON is repetitive enough that the
// LZ codec has to win. A ratio at or below 1.0 fails the bench.
//
// Usage: bench_store [reports-per-class] [--json <path>]  (BENCH_store.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/report_json.hpp"
#include "game/random_games.hpp"
#include "serve/canonical.hpp"
#include "store/store.hpp"

namespace {

using cnash::bench::Json;

struct LoadClass {
  std::string label;
  std::string backend;
  std::size_t actions;
  std::size_t runs;
  std::size_t iterations;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string temp_store_dir() {
  std::string tmpl = "/tmp/cnash_bench_store_XXXXXX";
  if (!::mkdtemp(tmpl.data())) {
    std::perror("bench_store: mkdtemp");
    std::exit(1);
  }
  return tmpl;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cnash;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  const std::size_t per_class = cli.runs > 0 ? cli.runs : 16;
  bench::JsonReport report("store", cli);

  // Same production-mix shape as bench_serve_throughput: cheap exact solves,
  // a pivoting solver, and the hardware-model backends, across game sizes —
  // so the stored values span the report-size spectrum.
  const std::vector<LoadClass> classes = {
      {"exact_sa_2", "exact-sa", 2, 8, 400},
      {"exact_sa_16", "exact-sa", 16, 4, 400},
      {"lemke_howson_12", "lemke-howson", 12, 1, 0},
      {"hardware_sa_4", "hardware-sa", 4, 4, 300},
      {"hardware_sa_tiled_8", "hardware-sa-tiled", 8, 2, 300},
  };

  // Solve the whole load up front (solver time must not pollute store
  // timings); keep (key, value) exactly as serve/cache.cpp would persist it.
  util::Rng rng(0xCA5CADE);
  std::vector<std::pair<serve::GameKey, std::string>> load;
  load.reserve(classes.size() * per_class);
  std::size_t raw_bytes = 0;
  for (const LoadClass& cls : classes)
    for (std::size_t i = 0; i < per_class; ++i) {
      game::BimatrixGame g =
          cls.backend.rfind("hardware", 0) == 0
              ? game::random_integer_game(cls.actions, cls.actions, rng)
              : game::random_covariant_game(cls.actions, cls.actions, 0.0, rng);
      core::SolveRequest req(g);
      req.backend = cls.backend;
      req.runs = cls.runs;
      req.seed = 1000 + i;
      if (cls.iterations > 0) req.sa.iterations = cls.iterations;
      serve::CanonicalRequest canonical = serve::canonicalize(std::move(req));
      const core::SolveReport solved =
          core::SolverRegistry::global().at(cls.backend).solve(
              canonical.request);
      std::string value = core::report_to_json(solved).dump();
      raw_bytes += value.size();
      load.emplace_back(std::move(canonical.key), std::move(value));
    }

  const std::string dir = temp_store_dir();
  Json& root = report.root();
  root.set("reports_per_class", per_class);
  root.set("records", load.size());
  root.set("raw_bytes", raw_bytes);
  Json& classes_json = root.arr("classes");
  for (const LoadClass& cls : classes) {
    Json& c = classes_json.push();
    c.set("label", cls.label);
    c.set("backend", cls.backend);
    c.set("actions", cls.actions);
  }

  bool ok = true;
  double compression_ratio = 0.0;

  // ---- cold write ----
  {
    store::SolutionStore store(dir);
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& [key, value] : load)
      store.put(key.digest, key.blob, value);
    const double wall = seconds_since(t0);
    store.sync();
    const store::StoreStats s = store.stats();
    compression_ratio = s.compression_ratio();
    Json& cold = root.obj("cold_write");
    cold.set("wall_s", wall);
    cold.set("puts_per_sec", wall > 0 ? load.size() / wall : 0.0);
    cold.set("raw_mb_per_sec",
             wall > 0 ? raw_bytes / (wall * 1024.0 * 1024.0) : 0.0);
    cold.set("segments", s.segments);
    cold.set("live_raw_bytes", s.live_raw_bytes);
    cold.set("live_stored_bytes", s.live_stored_bytes);
    cold.set("compressed_records", s.compressed_records);
    cold.set("stored_records", s.stored_records);
    cold.set("compression_ratio", compression_ratio);
    std::printf("cold write : %5zu records in %.4f s (%8.0f put/s), "
                "%.2fx compression (%zu lz / %zu stored)\n",
                load.size(), wall, load.size() / (wall > 0 ? wall : 1.0),
                compression_ratio, s.compressed_records, s.stored_records);
    ok = ok && s.entries == load.size();
  }  // destructor closes every fd: the reopen below is a true cold start

  // ---- warm restart read ----
  {
    const auto t_open = std::chrono::steady_clock::now();
    store::SolutionStore store(dir);
    const double open_wall = seconds_since(t_open);
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t verified = 0;
    for (const auto& [key, value] : load) {
      const auto got = store.get(key.digest, key.blob);
      if (got && *got == value) verified++;
    }
    const double wall = seconds_since(t0);
    const store::StoreStats s = store.stats();
    Json& warm = root.obj("warm_restart_read");
    warm.set("open_wall_s", open_wall);
    warm.set("read_wall_s", wall);
    warm.set("reads_per_sec", wall > 0 ? load.size() / wall : 0.0);
    warm.set("raw_mb_per_sec",
             wall > 0 ? raw_bytes / (wall * 1024.0 * 1024.0) : 0.0);
    warm.set("byte_identical", verified);
    std::printf("warm read  : %5zu records in %.4f s (%8.0f get/s), "
                "open+recover %.4f s, %zu/%zu byte-identical\n",
                load.size(), wall, load.size() / (wall > 0 ? wall : 1.0),
                open_wall, verified, load.size());
    ok = ok && verified == load.size() && s.hits == load.size() &&
         s.torn_tail_truncations == 0 && s.corrupt_records_skipped == 0;
  }

  // ---- compact ----
  {
    store::SolutionStore store(dir);
    // Supersede half the load: every second key rewritten → dead weight.
    for (std::size_t i = 0; i < load.size(); i += 2)
      store.put(load[i].first.digest, load[i].first.blob, load[i].second);
    const std::size_t dead_before = store.stats().dead_stored_bytes;
    const auto t0 = std::chrono::steady_clock::now();
    store.compact();
    const double wall = seconds_since(t0);
    const store::StoreStats s = store.stats();
    Json& compact = root.obj("compact");
    compact.set("wall_s", wall);
    compact.set("reclaimed_bytes", dead_before);
    compact.set("segments_after", s.segments);
    compact.set("entries_after", s.entries);
    std::printf("compact    : reclaimed %zu dead bytes in %.4f s "
                "(%zu entries, %zu segments)\n",
                dead_before, wall, s.entries, s.segments);
    ok = ok && s.dead_stored_bytes == 0 && s.entries == load.size();
    // Post-compact spot check: everything still byte-identical.
    for (const auto& [key, value] : load) {
      const auto got = store.get(key.digest, key.blob);
      ok = ok && got && *got == value;
    }
  }

  root.set("compression_ratio", compression_ratio);
  report.finish(static_cast<double>(3 * load.size()));

  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);

  if (compression_ratio <= 1.0) {
    std::fprintf(stderr,
                 "bench_store: FAILED — compression ratio %.3f <= 1.0\n",
                 compression_ratio);
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "bench_store: FAILED (verification — see above)\n");
    return 1;
  }
  std::printf("compression ratio: %.3fx\n", compression_ratio);
  return 0;
}
