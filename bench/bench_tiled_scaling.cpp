// Tiles vs monolith: what sharding a game across fixed-capacity crossbar
// tiles buys as the action count grows from 8 to 256.
//
// Per game size the bench reports, for the monolithic bi-crossbar and for
// the tiled chip (64-row tiles, default ChipConfig aggregation):
//   * measured wall clock of one incremental SA run on the simulator;
//   * modeled iteration latency (core/timing): the monolithic line settle
//     grows with the full array dimensions, the tiled path with the fixed
//     tile dimensions plus the log-depth H-tree;
//   * modeled macro area (xbar/area): fixed-size tile overhead + H-tree
//     adders vs one giant array;
//   * modeled read energy per iteration (xbar/energy), including the
//     aggregation adders.
// The monolithic evaluator is also *simulated* above the bench_scaling
// cap (96 actions) for reference, but the modeled columns are the point:
// past a few hundred lines the monolithic array is parasitics-bound while
// the tiles stay at their fixed operating point. The tiled path is the one
// that lifts the solvable range to >= 256 actions.
//
// Usage: bench_tiled_scaling [runs] [--threads N] [--json <path>]
//   runs       SA runs per size (default 1; runs > 1 average the wall clock)
//   --json     write machine-readable results to BENCH_tiled_scaling.json

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "chip/tiled_two_phase.hpp"
#include "core/anneal.hpp"
#include "core/timing.hpp"
#include "core/two_phase.hpp"
#include "game/random_games.hpp"
#include "util/table.hpp"
#include "xbar/area.hpp"
#include "xbar/energy.hpp"

namespace {

cnash::game::BimatrixGame sized_game(std::size_t n, cnash::util::Rng& rng) {
  // Integer coordination-style payoffs (diagonal 2..6) keep the crossbar
  // mapping exact at every size.
  cnash::la::Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) = static_cast<double>(2 + rng.uniform_index(5));
  return cnash::game::BimatrixGame(a, a.transposed(),
                                   "coord-" + std::to_string(n));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cnash;

  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  bench::JsonReport report("tiled_scaling", cli);
  const std::size_t runs = cli.runs > 0 ? cli.runs : 1;

  const std::uint32_t intervals = 8;
  chip::ChipConfig chip_cfg;
  chip_cfg.tile_rows = 64;
  chip_cfg.tile_cols = 1024;
  core::TwoPhaseConfig cfg;  // realistic non-idealities on both paths
  core::SaOptions sa;
  sa.iterations = 4000;

  const core::CNashTimingModel timing;
  const xbar::AreaModel area;
  const xbar::EnergyModel energy;

  std::printf(
      "=== Tiled chip vs monolithic array: %u-interval SA, %zu run(s), "
      "%zu iters ===\n\n",
      intervals, runs, sa.iterations);
  util::Table table({"actions", "tiles", "mono SA (s)", "tiled SA (s)",
                     "mono analog (ns)", "tiled analog (ns)", "mono area (mm2)",
                     "tiled area (mm2)", "tiled E/iter (nJ)", "Δf"});

  util::Rng game_rng(0x715CA1E);
  std::size_t total_iters = 0;
  for (const std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const game::BimatrixGame g = sized_game(n, game_rng);

    auto timed_sa = [&](core::ObjectiveEvaluator& ev, double* objective) {
      double total = 0.0;
      for (std::size_t r = 0; r < runs; ++r) {
        util::Rng sa_rng(4000 + 13 * r);
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = core::simulated_annealing(ev, intervals, sa, sa_rng);
        total += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
        *objective = res.final_objective;
        total_iters += sa.iterations;
      }
      return total / static_cast<double>(runs);
    };

    core::TwoPhaseEvaluator mono(g, intervals, cfg, util::Rng(1000 + n));
    chip::TiledTwoPhaseEvaluator tiled(g, intervals, cfg, chip_cfg,
                                       util::Rng(1000 + n));
    double f_mono = 0.0, f_tiled = 0.0;
    const double dt_mono = timed_sa(mono, &f_mono);
    const double dt_tiled = timed_sa(tiled, &f_tiled);

    const chip::TilePartition& part = tiled.chip_m().partition();
    const xbar::MappingGeometry geom = mono.crossbar_m().mapping().geometry();
    core::TileGridTiming grid{chip_cfg.tile_rows, chip_cfg.tile_cols,
                              part.grid_rows(), part.grid_cols(), n};
    const double it_mono = timing.iteration_s(geom);
    const double it_tiled = timing.tiled_iteration_s(grid);
    // The iteration is controller-bound at these sizes; the analog path is
    // where the parasitic divergence (monolithic line growth vs fixed tiles
    // + log-depth H-tree) actually shows.
    const double ap_mono = timing.analog_path_s(geom);
    const double ap_tiled = timing.tiled_analog_path_s(grid);

    const xbar::AreaBreakdown a_mono = area.macro(
        geom, mono.crossbar_nt().mapping().geometry());
    const xbar::AreaBreakdown a_tiled = area.tiled_macro(
        chip_cfg.tile_rows, chip_cfg.tile_cols, part.num_tiles(),
        tiled.chip_nt().partition().num_tiles(), n, n);

    // Modeled energy of one two-phase iteration on the tiled chip: both
    // arrays read twice (MV + VMV), every activated PHYSICAL line charged —
    // each logical word line is replicated across the tile columns and each
    // bit line across the tile rows, the tiling's real energy overhead —
    // then the H-tree merges the tile outputs, WTA + 2 conversions per array.
    const double i_read = tiled.chip_m().unit_current() *
                          static_cast<double>(intervals) *
                          static_cast<double>(intervals) * 2.0;
    const std::size_t phys_rows = geom.total_rows() * part.grid_cols();
    const std::size_t phys_cols = geom.total_cols() * part.grid_rows();
    const xbar::ReadEnergyBreakdown read =
        energy.array_read(i_read, phys_rows, phys_cols, 2);
    const double e_iter =
        2.0 * (read.total() + energy.wta_tree(n) +
               energy.htree(part.grid_cols()) + energy.htree(part.num_tiles())) +
        energy.sa_iteration();

    table.add_row(
        {std::to_string(n),
         std::to_string(part.grid_rows()) + "x" + std::to_string(part.grid_cols()),
         util::Table::num(dt_mono, 3), util::Table::num(dt_tiled, 3),
         util::Table::num(ap_mono * 1e9, 2), util::Table::num(ap_tiled * 1e9, 2),
         util::Table::num(a_mono.total_um2() * 1e-6, 3),
         util::Table::num(a_tiled.total_um2() * 1e-6, 3),
         util::Table::num(e_iter * 1e9, 3),
         util::Table::num(std::abs(f_mono - f_tiled), 4)});

    bench::Json& node = report.root().arr("size_sweep").push();
    node.set("actions", n);
    node.set("backend", "hardware-sa-tiled");
    node.set("grid_rows", part.grid_rows());
    node.set("grid_cols", part.grid_cols());
    node.set("num_tiles", part.num_tiles());
    node.set("mono_sa_wall_clock_s", dt_mono);
    node.set("tiled_sa_wall_clock_s", dt_tiled);
    node.set("mono_modeled_iteration_s", it_mono);
    node.set("tiled_modeled_iteration_s", it_tiled);
    node.set("mono_modeled_analog_path_s", ap_mono);
    node.set("tiled_modeled_analog_path_s", ap_tiled);
    node.set("mono_area_um2", a_mono.total_um2());
    node.set("tiled_area_um2", a_tiled.total_um2());
    node.set("tiled_htree_area_um2", a_tiled.htree_um2);
    node.set("tiled_energy_per_iteration_j", e_iter);
    node.set("final_objective_delta", std::abs(f_mono - f_tiled));
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "Shape: simulator wall clock tracks the O(m+n) incremental kernels on\n"
      "both paths; the modeled columns diverge — monolithic settle grows\n"
      "with the full array's line lengths while the tiled path stays at the\n"
      "fixed tile operating point plus a log-depth H-tree, so the tiled\n"
      "chip is the one that keeps scaling past 128 actions.\n");
  report.finish(static_cast<double>(total_iters));
  return 0;
}
