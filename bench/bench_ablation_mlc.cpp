// Ablation: multi-level-cell FeFETs ([29]) vs the paper's binary (1-bit)
// cells. More levels shrink the bi-crossbar (fewer cells per payoff element)
// but intermediate conductance states carry extra programming spread; this
// bench sweeps the level count on the 8-action game and reports array size,
// estimated area, and solver quality.

#include <cstdio>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "util/table.hpp"
#include "xbar/area.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  const std::size_t runs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
  const auto inst = game::paper_benchmarks()[2];  // Modified PD, I = 60
  const auto gt = game::all_equilibria(inst.game);

  std::printf("=== Ablation: multi-level cells (%s, %zu runs each) ===\n\n",
              inst.game.name().c_str(), runs);
  util::Table table({"levels/cell", "t (cells/element)", "array cells (M)",
                     "macro area (mm2)", "success %", "distinct found"});

  const xbar::AreaModel area_model;
  // Success rate is conditioned on the fabricated crossbar instance (static
  // variability draw), which carries several-sigma spread on this large
  // array — average over independently fabricated macros.
  constexpr int kInstances = 4;
  for (const std::uint32_t levels : {2u, 3u, 5u, 12u, 23u}) {
    std::vector<core::CandidateSolution> cands;
    const xbar::MappingGeometry* geom = nullptr;
    double cells = 0.0, area_mm2 = 0.0;
    std::size_t distinct = 0;
    for (int instance = 0; instance < kInstances; ++instance) {
      core::CNashConfig cfg;
      cfg.intervals = inst.intervals;
      cfg.sa.iterations = inst.sa_iterations;
      cfg.seed = 5200 + levels * 17 + static_cast<std::uint64_t>(instance);
      cfg.hardware.levels_per_cell = levels;
      core::CNashSolver solver(inst.game, cfg);
      const auto& gm = solver.hardware()->crossbar_m().mapping().geometry();
      const auto& gnt = solver.hardware()->crossbar_nt().mapping().geometry();
      cells = static_cast<double>(gm.total_cells() + gnt.total_cells());
      area_mm2 = area_model.macro(gm, gnt).total_um2() / 1e6;
      static xbar::MappingGeometry geom_keep;
      geom_keep = gm;
      geom = &geom_keep;
      std::vector<core::CandidateSolution> inst_cands;
      for (const auto& o : solver.run(runs / kInstances))
        inst_cands.push_back({o.p, o.q});
      distinct = std::max(
          distinct,
          core::classify(inst.game, gt, inst_cands, 1e-9).distinct_found());
      cands.insert(cands.end(), inst_cands.begin(), inst_cands.end());
    }
    const auto r = core::classify(inst.game, gt, cands, 1e-9);
    table.add_row({std::to_string(levels),
                   std::to_string(geom->cells_per_element),
                   util::Table::num(cells / 1e6, 2),
                   util::Table::num(area_mm2, 3),
                   core::percent(r.success_rate()),
                   std::to_string(r.distinct_found()) + "/" +
                       std::to_string(r.target())});
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "Shape: moderate level counts shrink the macro by an order of magnitude\n"
      "at comparable (or better: fewer cells, less accumulated spread) solver\n"
      "quality; collapsing a payoff element into a single cell exposes the\n"
      "intermediate-state programming spread and costs success rate.\n");
  return 0;
}
