// Microbenchmarks (google-benchmark): cost of the simulator primitives — the
// two-phase hardware evaluation, exact objective, crossbar reads, WTA
// reductions and annealer sweeps.

#include <benchmark/benchmark.h>

#include "core/anneal.hpp"
#include "core/solver.hpp"
#include "core/two_phase.hpp"
#include "game/games.hpp"
#include "qubo/annealer.hpp"
#include "qubo/squbo_builder.hpp"
#include "util/rng.hpp"
#include "wta/wta_tree.hpp"

namespace {

using namespace cnash;

void BM_LaMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  la::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.uniform();
  la::Vector v(n), out;
  for (auto& x : v) x = rng.uniform();
  for (auto _ : state) {
    m.multiply_into(v, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LaMultiply)->Arg(8)->Arg(64)->Arg(256);

void BM_LaMultiplyTransposed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(12);
  la::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.uniform();
  la::Vector v(n), out;
  for (auto& x : v) x = rng.uniform();
  for (auto _ : state) {
    m.multiply_transposed_into(v, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LaMultiplyTransposed)->Arg(8)->Arg(64)->Arg(256);

void BM_LaVmv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(13);
  la::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.uniform();
  la::Vector v(n), w(n);
  for (auto& x : v) x = rng.uniform();
  for (auto& x : w) x = rng.uniform();
  for (auto _ : state) benchmark::DoNotOptimize(la::vmv(v, m, w));
}
BENCHMARK(BM_LaVmv)->Arg(8)->Arg(64)->Arg(256);

void BM_ExactObjective(benchmark::State& state) {
  core::ExactMaxQubo f(game::modified_prisoners_dilemma());
  util::Rng rng(1);
  game::QuantizedProfile prof{game::QuantizedStrategy::random(8, 60, rng),
                              game::QuantizedStrategy::random(8, 60, rng)};
  for (auto _ : state) benchmark::DoNotOptimize(f.evaluate(prof));
}
BENCHMARK(BM_ExactObjective);

void BM_TwoPhaseHardwareEval(benchmark::State& state) {
  const auto inst = game::paper_benchmarks()[static_cast<std::size_t>(
      state.range(0))];
  core::TwoPhaseConfig cfg;
  core::TwoPhaseEvaluator hw(inst.game, inst.intervals, cfg, util::Rng(2));
  util::Rng rng(3);
  game::QuantizedProfile prof{
      game::QuantizedStrategy::random(inst.game.num_actions1(), inst.intervals,
                                      rng),
      game::QuantizedStrategy::random(inst.game.num_actions2(), inst.intervals,
                                      rng)};
  for (auto _ : state) benchmark::DoNotOptimize(hw.evaluate(prof));
}
BENCHMARK(BM_TwoPhaseHardwareEval)->Arg(0)->Arg(1)->Arg(2);

void BM_CrossbarVmvRead(benchmark::State& state) {
  const auto inst = game::paper_benchmarks()[2];
  core::TwoPhaseConfig cfg;
  core::TwoPhaseEvaluator hw(inst.game, inst.intervals, cfg, util::Rng(4));
  util::Rng rng(5);
  const auto p = game::QuantizedStrategy::random(8, 60, rng).counts();
  const auto q = game::QuantizedStrategy::random(8, 60, rng).counts();
  for (auto _ : state)
    benchmark::DoNotOptimize(hw.crossbar_m().read_vmv(p, q));
}
BENCHMARK(BM_CrossbarVmvRead);

void BM_TwoPhaseIncrementalPropose(benchmark::State& state) {
  // One SA tick move scored through the incremental propose/commit path —
  // O(m+n) crossbar delta reads + WTA/ADC — vs the full re-read of
  // BM_TwoPhaseHardwareEval.
  const auto inst = game::paper_benchmarks()[static_cast<std::size_t>(
      state.range(0))];
  core::TwoPhaseConfig cfg;
  core::TwoPhaseEvaluator hw(inst.game, inst.intervals, cfg, util::Rng(2));
  util::Rng rng(3);
  game::QuantizedProfile prof{
      game::QuantizedStrategy::random(inst.game.num_actions1(), inst.intervals,
                                      rng),
      game::QuantizedStrategy::random(inst.game.num_actions2(), inst.intervals,
                                      rng)};
  hw.reset(prof);
  std::size_t from = 0;
  while (prof.p.count(from) == 0) ++from;
  const std::size_t to = (from + 1) % inst.game.num_actions1();
  const core::TickMove mv{core::TickMove::Player::kRow,
                          static_cast<std::uint32_t>(from),
                          static_cast<std::uint32_t>(to)};
  for (auto _ : state) benchmark::DoNotOptimize(hw.propose(&mv, 1));
}
BENCHMARK(BM_TwoPhaseIncrementalPropose)->Arg(0)->Arg(1)->Arg(2);

void BM_WtaTreeReduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  wta::WtaTree tree(n);
  util::Rng rng(6);
  std::vector<double> inputs(n);
  for (auto& v : inputs) v = rng.uniform(1e-6, 20e-6);
  for (auto _ : state) benchmark::DoNotOptimize(tree.reduce(inputs, &rng));
}
BENCHMARK(BM_WtaTreeReduce)->Arg(2)->Arg(8)->Arg(64);

void BM_SaIterationBattleOfSexes(benchmark::State& state) {
  core::TwoPhaseConfig cfg;
  core::TwoPhaseEvaluator hw(game::battle_of_sexes(), 12, cfg, util::Rng(7));
  util::Rng rng(8);
  core::SaOptions opts;
  opts.iterations = 100;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::simulated_annealing(hw, 12, opts, rng));
}
BENCHMARK(BM_SaIterationBattleOfSexes)->Unit(benchmark::kMicrosecond);

void BM_SQuboAnnealRead(benchmark::State& state) {
  const qubo::SQubo sq(game::bird_game());
  util::Rng rng(9);
  for (auto _ : state)
    benchmark::DoNotOptimize(qubo::anneal(sq.model(), {4.0, 0.05, 60}, rng));
}
BENCHMARK(BM_SQuboAnnealRead)->Unit(benchmark::kMicrosecond);

void BM_CrossbarProgramming(benchmark::State& state) {
  const auto inst = game::paper_benchmarks()[static_cast<std::size_t>(
      state.range(0))];
  const auto shifted = inst.game.shifted_non_negative(0.0);
  for (auto _ : state) {
    util::Rng rng(10);
    xbar::CrossbarMapping map(shifted.payoff1(), inst.intervals);
    xbar::ArrayConfig cfg;
    benchmark::DoNotOptimize(
        xbar::ProgrammedCrossbar(std::move(map), cfg, rng));
  }
}
BENCHMARK(BM_CrossbarProgramming)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
