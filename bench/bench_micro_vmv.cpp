// Microbenchmarks (google-benchmark): cost of the simulator primitives — the
// two-phase hardware evaluation, exact objective, crossbar reads, WTA
// reductions, annealer sweeps, the simd:: kernel layer at each ISA level, and
// the lockstep run-batched SA drivers.
//
// Supports the shared `--json <path>` flag (BENCH_micro_vmv.json) alongside
// the usual --benchmark_* flags.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "core/anneal.hpp"
#include "core/engine.hpp"
#include "core/solver.hpp"
#include "core/two_phase.hpp"
#include "game/games.hpp"
#include "qubo/annealer.hpp"
#include "qubo/squbo_builder.hpp"
#include "simd/simd.hpp"
#include "util/rng.hpp"
#include "wta/wta_tree.hpp"

namespace {

using namespace cnash;

void BM_LaMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  la::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.uniform();
  la::Vector v(n), out;
  for (auto& x : v) x = rng.uniform();
  for (auto _ : state) {
    m.multiply_into(v, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LaMultiply)->Arg(8)->Arg(64)->Arg(256);

void BM_LaMultiplyTransposed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(12);
  la::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.uniform();
  la::Vector v(n), out;
  for (auto& x : v) x = rng.uniform();
  for (auto _ : state) {
    m.multiply_transposed_into(v, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LaMultiplyTransposed)->Arg(8)->Arg(64)->Arg(256);

void BM_LaVmv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(13);
  la::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = rng.uniform();
  la::Vector v(n), w(n);
  for (auto& x : v) x = rng.uniform();
  for (auto& x : w) x = rng.uniform();
  for (auto _ : state) benchmark::DoNotOptimize(la::vmv(v, m, w));
}
BENCHMARK(BM_LaVmv)->Arg(8)->Arg(64)->Arg(256);

void BM_ExactObjective(benchmark::State& state) {
  core::ExactMaxQubo f(game::modified_prisoners_dilemma());
  util::Rng rng(1);
  game::QuantizedProfile prof{game::QuantizedStrategy::random(8, 60, rng),
                              game::QuantizedStrategy::random(8, 60, rng)};
  for (auto _ : state) benchmark::DoNotOptimize(f.evaluate(prof));
}
BENCHMARK(BM_ExactObjective);

void BM_TwoPhaseHardwareEval(benchmark::State& state) {
  const auto inst = game::paper_benchmarks()[static_cast<std::size_t>(
      state.range(0))];
  core::TwoPhaseConfig cfg;
  core::TwoPhaseEvaluator hw(inst.game, inst.intervals, cfg, util::Rng(2));
  util::Rng rng(3);
  game::QuantizedProfile prof{
      game::QuantizedStrategy::random(inst.game.num_actions1(), inst.intervals,
                                      rng),
      game::QuantizedStrategy::random(inst.game.num_actions2(), inst.intervals,
                                      rng)};
  for (auto _ : state) benchmark::DoNotOptimize(hw.evaluate(prof));
}
BENCHMARK(BM_TwoPhaseHardwareEval)->Arg(0)->Arg(1)->Arg(2);

void BM_CrossbarVmvRead(benchmark::State& state) {
  const auto inst = game::paper_benchmarks()[2];
  core::TwoPhaseConfig cfg;
  core::TwoPhaseEvaluator hw(inst.game, inst.intervals, cfg, util::Rng(4));
  util::Rng rng(5);
  const auto p = game::QuantizedStrategy::random(8, 60, rng).counts();
  const auto q = game::QuantizedStrategy::random(8, 60, rng).counts();
  for (auto _ : state)
    benchmark::DoNotOptimize(hw.crossbar_m().read_vmv(p, q));
}
BENCHMARK(BM_CrossbarVmvRead);

void BM_TwoPhaseIncrementalPropose(benchmark::State& state) {
  // One SA tick move scored through the incremental propose/commit path —
  // O(m+n) crossbar delta reads + WTA/ADC — vs the full re-read of
  // BM_TwoPhaseHardwareEval.
  const auto inst = game::paper_benchmarks()[static_cast<std::size_t>(
      state.range(0))];
  core::TwoPhaseConfig cfg;
  core::TwoPhaseEvaluator hw(inst.game, inst.intervals, cfg, util::Rng(2));
  util::Rng rng(3);
  game::QuantizedProfile prof{
      game::QuantizedStrategy::random(inst.game.num_actions1(), inst.intervals,
                                      rng),
      game::QuantizedStrategy::random(inst.game.num_actions2(), inst.intervals,
                                      rng)};
  hw.reset(prof);
  std::size_t from = 0;
  while (prof.p.count(from) == 0) ++from;
  const std::size_t to = (from + 1) % inst.game.num_actions1();
  const core::TickMove mv{core::TickMove::Player::kRow,
                          static_cast<std::uint32_t>(from),
                          static_cast<std::uint32_t>(to)};
  for (auto _ : state) benchmark::DoNotOptimize(hw.propose(&mv, 1));
}
BENCHMARK(BM_TwoPhaseIncrementalPropose)->Arg(0)->Arg(1)->Arg(2);

void BM_WtaTreeReduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  wta::WtaTree tree(n);
  util::Rng rng(6);
  std::vector<double> inputs(n);
  for (auto& v : inputs) v = rng.uniform(1e-6, 20e-6);
  for (auto _ : state) benchmark::DoNotOptimize(tree.reduce(inputs, &rng));
}
BENCHMARK(BM_WtaTreeReduce)->Arg(2)->Arg(8)->Arg(64);

void BM_SaIterationBattleOfSexes(benchmark::State& state) {
  core::TwoPhaseConfig cfg;
  core::TwoPhaseEvaluator hw(game::battle_of_sexes(), 12, cfg, util::Rng(7));
  util::Rng rng(8);
  core::SaOptions opts;
  opts.iterations = 100;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::simulated_annealing(hw, 12, opts, rng));
}
BENCHMARK(BM_SaIterationBattleOfSexes)->Unit(benchmark::kMicrosecond);

void BM_SQuboAnnealRead(benchmark::State& state) {
  const qubo::SQubo sq(game::bird_game());
  util::Rng rng(9);
  for (auto _ : state)
    benchmark::DoNotOptimize(qubo::anneal(sq.model(), {4.0, 0.05, 60}, rng));
}
BENCHMARK(BM_SQuboAnnealRead)->Unit(benchmark::kMicrosecond);

void BM_CrossbarProgramming(benchmark::State& state) {
  const auto inst = game::paper_benchmarks()[static_cast<std::size_t>(
      state.range(0))];
  const auto shifted = inst.game.shifted_non_negative(0.0);
  for (auto _ : state) {
    util::Rng rng(10);
    xbar::CrossbarMapping map(shifted.payoff1(), inst.intervals);
    xbar::ArrayConfig cfg;
    benchmark::DoNotOptimize(
        xbar::ProgrammedCrossbar(std::move(map), cfg, rng));
  }
}
BENCHMARK(BM_CrossbarProgramming)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// ---- simd:: kernel layer, SIMD-vs-scalar axis -------------------------------
// Arg(0/1/2) selects the forced ISA level (scalar/avx2/avx512); levels the
// host cannot run are skipped. All levels produce identical bits — these rows
// quantify what the wider units buy, kernel by kernel.

bool enter_level(benchmark::State& state, std::int64_t level_arg) {
  const auto level = static_cast<simd::IsaLevel>(level_arg);
  if (!simd::force_level(level)) {
    state.SkipWithError("ISA level unsupported on this host/build");
    return false;
  }
  state.SetLabel(simd::level_name(level));
  return true;
}

void leave_level() { simd::force_level(simd::max_supported_level()); }

void BM_SimdAxpySkip(benchmark::State& state) {
  if (!enter_level(state, state.range(0))) return;
  constexpr std::size_t n = 256;
  util::Rng rng(20);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform();
  for (auto& v : y) v = rng.uniform();
  for (auto _ : state) {
    simd::axpy_skip(y.data(), 1.0009, x.data(), n, n / 2);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
  leave_level();
}
BENCHMARK(BM_SimdAxpySkip)->Arg(0)->Arg(1)->Arg(2);

void BM_SimdDot(benchmark::State& state) {
  if (!enter_level(state, state.range(0))) return;
  constexpr std::size_t n = 256;
  util::Rng rng(21);
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.uniform();
  for (auto& v : b) v = rng.uniform();
  for (auto _ : state)
    benchmark::DoNotOptimize(simd::dot(a.data(), b.data(), n));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
  leave_level();
}
BENCHMARK(BM_SimdDot)->Arg(0)->Arg(1)->Arg(2);

void BM_SimdFillNormals(benchmark::State& state) {
  if (!enter_level(state, state.range(0))) return;
  constexpr std::size_t n = 1024;
  util::Rng rng(22);
  std::vector<double> out(n);
  for (auto _ : state) {
    simd::fill_normals(rng, out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
  leave_level();
}
BENCHMARK(BM_SimdFillNormals)->Arg(0)->Arg(1)->Arg(2);

void BM_SimdOffCellExp10(benchmark::State& state) {
  if (!enter_level(state, state.range(0))) return;
  constexpr std::size_t n = 256;
  util::Rng rng(23);
  std::vector<double> zv(n), sum(n, 0.0);
  for (auto& v : zv) v = rng.uniform(-3.0, 3.0);
  for (auto _ : state) {
    simd::off_cell_accumulate(sum.data(), zv.data(), n, 1e-9, 0.35);
    benchmark::DoNotOptimize(sum.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
  leave_level();
}
BENCHMARK(BM_SimdOffCellExp10)->Arg(0)->Arg(1)->Arg(2);

// ---- Lockstep run-batched SA, batched-kernel axis ---------------------------
// Arg(K) = lockstep lanes per simulated_annealing_batch call. Reported time
// is for K lanes x 200 iterations; items/s is lane-iterations/s, so the
// per-run cost win from the shared payoff block shows up directly.

void BM_SaExactBatchLanes(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const core::ExactEvaluatorFactory factory(game::coordination(64));
  core::SaOptions opts;
  opts.iterations = 200;
  std::vector<std::uint64_t> keys(k);
  const util::Rng root(24);
  for (std::size_t l = 0; l < k; ++l) keys[l] = 2 * l;
  for (auto _ : state) {
    std::vector<util::Rng> rngs;
    for (std::size_t l = 0; l < k; ++l) rngs.push_back(root.split(2 * l + 1));
    auto batch = factory.create_batched(keys.data(), k);
    benchmark::DoNotOptimize(
        core::simulated_annealing_batch(*batch, 12, opts, rngs.data()));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * k * opts.iterations));
}
BENCHMARK(BM_SaExactBatchLanes)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_SaTwoPhaseBatchLanes(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const core::HardwareEvaluatorFactory factory(game::bird_game(), 12,
                                               core::TwoPhaseConfig{},
                                               util::Rng(25));
  core::SaOptions opts;
  opts.iterations = 200;
  std::vector<std::uint64_t> keys(k);
  const util::Rng root(26);
  for (std::size_t l = 0; l < k; ++l) keys[l] = 2 * l;
  for (auto _ : state) {
    std::vector<util::Rng> rngs;
    for (std::size_t l = 0; l < k; ++l) rngs.push_back(root.split(2 * l + 1));
    auto batch = factory.create_batched(keys.data(), k);
    benchmark::DoNotOptimize(
        core::simulated_annealing_batch(*batch, 12, opts, rngs.data()));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * k * opts.iterations));
}
BENCHMARK(BM_SaTwoPhaseBatchLanes)->Arg(1)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_SaReplicaExchangeEnsemble(benchmark::State& state) {
  const core::ExactEvaluatorFactory factory(game::coordination(64));
  core::SaOptions opts;
  opts.iterations = 200;
  const std::size_t r = opts.replicas;
  std::vector<std::uint64_t> keys(r);
  const util::Rng root(27);
  for (std::size_t l = 0; l < r; ++l) keys[l] = 2 * l;
  for (auto _ : state) {
    std::vector<util::Rng> rngs;
    for (std::size_t l = 0; l < r; ++l) rngs.push_back(root.split(2 * l + 1));
    util::Rng swap_rng = root.split(2 * r + 1);
    auto batch = factory.create_batched(keys.data(), r);
    benchmark::DoNotOptimize(core::simulated_annealing_replica_exchange(
        *batch, 12, opts, rngs.data(), swap_rng));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * r * opts.iterations));
}
BENCHMARK(BM_SaReplicaExchangeEnsemble)->Unit(benchmark::kMicrosecond);

// ---- main: google-benchmark plus the repo's shared --json reporting ---------

/// Console reporter that also captures every run for BENCH_micro_vmv.json.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(bench::Json* out) : out_(out) {}
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.error_occurred) continue;
      bench::Json& node = out_->arr("benchmarks").push();
      node.set("name", r.benchmark_name());
      node.set("real_time_ns", r.GetAdjustedRealTime());
      node.set("cpu_time_ns", r.GetAdjustedCPUTime());
      node.set("iterations", static_cast<double>(r.iterations));
      if (!r.report_label.empty()) node.set("label", r.report_label);
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::Json* out_;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  // Hand google-benchmark only its own flags; ours would be rejected.
  std::vector<char*> gb_args{argv[0]};
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) gb_args.push_back(argv[i]);
  int gb_argc = static_cast<int>(gb_args.size());
  benchmark::Initialize(&gb_argc, gb_args.data());

  bench::JsonReport report("micro_vmv", cli);
  report.root().set("simd_active_level",
                    simd::level_name(simd::active_level()));
  JsonCaptureReporter reporter(&report.root());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.finish();
  return 0;
}
