// Ablation: strategy quantization interval I. Sweeps I for the Battle of the
// Sexes and reports success rate and which equilibria are representable /
// found — mixed NE require the grid to contain them (I divisible by 3 here).

#include <cstdio>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  const std::size_t runs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;
  const auto g = game::battle_of_sexes();
  const auto gt = game::all_equilibria(g);

  std::printf("=== Ablation: quantization interval I (%s, %zu runs each) ===\n\n",
              g.name().c_str(), runs);
  util::Table table({"I", "mixed NE on grid", "success %", "distinct found",
                     "mixed found %"});
  for (const std::uint32_t intervals : {2u, 3u, 4u, 6u, 8u, 12u, 24u}) {
    bool mixed_on_grid = true;
    for (const auto& eq : gt) {
      if (!game::QuantizedStrategy::representable(eq.p, intervals) ||
          !game::QuantizedStrategy::representable(eq.q, intervals))
        mixed_on_grid = false;
    }
    core::CNashConfig cfg;
    cfg.intervals = intervals;
    cfg.sa.iterations = 6000;
    cfg.seed = 7000 + intervals;
    core::CNashSolver solver(g, cfg);
    std::vector<core::CandidateSolution> cands;
    for (const auto& o : solver.run(runs)) cands.push_back({o.p, o.q});
    const auto r = core::classify(g, gt, cands, 1e-9);
    table.add_row({std::to_string(intervals), mixed_on_grid ? "yes" : "no",
                   core::percent(r.success_rate()),
                   std::to_string(r.distinct_found()) + "/3",
                   core::percent(r.mixed_fraction())});
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "Shape: the mixed equilibrium (2/3,1/3)x(1/3,2/3) is only reachable\n"
      "when 3 | I; success rate saturates once the grid contains all NE.\n");
  return 0;
}
