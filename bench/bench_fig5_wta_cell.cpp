// Fig. 5(c): transient waveform of a 2-input WTA cell — settles to
// max(I1, I2) with ~0.08 ns latency and ~0.25 % output offset.

#include <cstdio>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "wta/wta_cell.hpp"

int main() {
  using namespace cnash;

  const wta::WtaCell cell;
  const double i1 = 18e-6, i2 = 12e-6;  // µA-class inputs as in Fig. 5(c)

  std::printf("=== Fig. 5(c): WTA cell transient, I1=%.0f uA, I2=%.0f uA ===\n",
              i1 * 1e6, i2 * 1e6);
  util::Table table({"time (ns)", "I_max (uA)", "settled fraction"});
  const double settled = cell.output(i1, i2);
  for (double t = 0.0; t <= 0.2001; t += 0.02) {
    const double out = cell.transient(i1, i2, t * 1e-9);
    table.add_row({util::Table::num(t, 2), util::Table::num(out * 1e6, 3),
                   util::Table::num(out / settled, 3)});
  }
  std::printf("%s\n", table.pretty().c_str());

  util::Rng rng(55);
  util::RunningStats offset;
  for (int c = 0; c < 50000; ++c) {
    const wta::WtaCell sampled({}, &rng);
    offset.add((sampled.output(i1, i2) - std::max(i1, i2)) / std::max(i1, i2));
  }
  std::printf("latency to 95%%: %.3f ns (paper: 0.08 ns)\n",
              cell.latency_s() * 1e9);
  std::printf("static output offset across cells: %.2f %% sigma (paper: 0.25 %%)\n",
              100.0 * offset.stddev());
  return 0;
}
