// Fig. 7(b): WTA output across process corners (ss, snfp, fnsp, ff, tt) —
// the tree must keep selecting the true maximum with bounded offset and
// corner-dependent settle time.

#include <cstdio>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "wta/wta_tree.hpp"

int main() {
  using namespace cnash;

  const std::vector<double> inputs{6e-6, 14e-6, 9e-6, 11e-6};
  const double truth = 14e-6;

  std::printf("=== Fig. 7(b): 4-input WTA tree across process corners ===\n");
  util::Table table({"corner", "output (uA)", "error %", "latency (ns)",
                     "winner stable"});
  for (const auto corner : wta::kAllCorners) {
    wta::WtaCellParams params;
    params.corner = corner;
    util::Rng rng(17);
    util::RunningStats out;
    bool stable = true;
    double latency_s = 0.0;
    // Monte-Carlo over fabricated tree instances (static mismatch per cell).
    for (int t = 0; t < 2000; ++t) {
      const wta::WtaTree tree(inputs.size(), params, &rng);
      latency_s = tree.latency_s();
      out.add(tree.reduce(inputs, &rng));
      if (tree.winner(inputs, &rng) != 1u) stable = false;
    }
    table.add_row({std::string(wta::corner_name(corner)),
                   util::Table::num(out.mean() * 1e6, 3),
                   util::Table::num(100.0 * (out.mean() - truth) / truth, 3),
                   util::Table::num(latency_s * 1e9, 3),
                   stable ? "yes" : "NO"});
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "Paper shape: all five corners settle to the correct maximum; skewed\n"
      "corners (snfp/fnsp) show larger offset, slow corner (ss) settles "
      "later.\n");
  return 0;
}
