// Fig. 9: proportion of distinct NE solutions found by each solver relative
// to the ground-truth target.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  std::printf("=== Fig. 9: Distinct NE Solutions Found vs Target ===\n\n");
  util::Table table({"game", "target", "D-Wave 2000Q6 (proxy)",
                     "D-Wave Advantage 4.1 (proxy)", "C-Nash (this work)",
                     "paper target"});

  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  bench::JsonReport report("fig9_distinct_solutions", cli);
  std::size_t total_runs = 0;
  const auto instances = game::paper_benchmarks();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::size_t runs =
        cli.runs > 0 ? cli.runs : bench::default_runs_for(i);
    std::fprintf(stderr, "running %s (%zu runs)...\n",
                 instances[i].game.name().c_str(), runs);
    const auto ev = bench::evaluate_instance(instances[i], runs, cli.threads);
    total_runs += 3 * runs;
    bench::report_instance(report.root().arr("instances").push(), ev);
    auto frac = [&](const core::SolverReport& r) {
      return std::to_string(r.distinct_found()) + "/" +
             std::to_string(r.target());
    };
    table.add_row({instances[i].game.name(),
                   std::to_string(ev.ground_truth.size()),
                   frac(ev.dwave_2000q), frac(ev.dwave_advantage),
                   frac(ev.cnash),
                   std::to_string(instances[i].paper_target_equilibria)});
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "Paper shape: C-Nash discovers every target solution (3/3, 6/6, 25/25)\n"
      "while the D-Wave solvers find at most a few pure ones (2/3, 2/6, "
      "3/25).\n");
  report.finish(static_cast<double>(total_runs));
  return 0;
}
