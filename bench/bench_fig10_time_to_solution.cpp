// Fig. 10: time-to-solution of the three Nash solvers. TTS = expected wall
// clock until the first successful run: run_time / success_rate (C-Nash) or
// job_time / success_rate (D-Wave job model). Success rates come from the
// measured proxies; the paper's reported speedups are printed alongside.

#include <cstdio>
#include <cmath>

#include "bench_common.hpp"
#include "core/timing.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  std::printf("=== Fig. 10: Time-to-Solution ===\n\n");
  util::Table table({"game", "solver", "success %", "TTS (s)",
                     "speedup vs C-Nash", "paper speedup"});

  const core::CNashTimingModel cnash_timing;
  const core::DWaveTimingModel t2000(core::dwave_2000q6_timing());
  const core::DWaveTimingModel tadv(core::dwave_advantage41_timing());

  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  bench::JsonReport report("fig10_time_to_solution", cli);
  std::size_t total_runs = 0;
  const auto instances = game::paper_benchmarks();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& inst = instances[i];
    const std::size_t runs =
        cli.runs > 0 ? cli.runs : bench::default_runs_for(i);
    std::fprintf(stderr, "running %s (%zu runs)...\n", inst.game.name().c_str(),
                 runs);
    const auto ev = bench::evaluate_instance(inst, runs, cli.threads);
    const auto ref = bench::paper_reference(i);
    total_runs += 3 * runs;  // three solvers per instance

    // Crossbar geometry for the C-Nash latency model.
    const auto shifted = inst.game.shifted_non_negative(0.0);
    const auto t_cells =
        static_cast<std::uint32_t>(shifted.payoff1().max_element());
    const xbar::MappingGeometry geom{inst.game.num_actions1(),
                                     inst.game.num_actions2(), inst.intervals,
                                     t_cells};

    const double cnash_tts = cnash_timing.time_to_solution_s(
        geom, inst.sa_iterations, ev.cnash.success_rate());
    const double tts_2000 =
        t2000.time_to_solution_s(ev.dwave_2000q.success_rate());
    const double tts_adv =
        tadv.time_to_solution_s(ev.dwave_advantage.success_rate());

    auto add = [&](const std::string& solver, double success, double tts,
                   double paper_speedup) {
      table.add_row({inst.game.name(), solver, core::percent(success),
                     std::isfinite(tts) ? util::Table::num(tts, 4) : "-",
                     std::isfinite(tts) && tts > 0 && cnash_tts > 0
                         ? util::Table::num(tts / cnash_tts, 1) + "X"
                         : "-",
                     paper_speedup < 0
                         ? "-"
                         : util::Table::num(paper_speedup, 1) + "X"});
    };
    add("D-Wave 2000 Q6 (proxy)", ev.dwave_2000q.success_rate(), tts_2000,
        ref.speedup_2000q);
    add("D-Wave Advantage 4.1 (proxy)", ev.dwave_advantage.success_rate(),
        tts_adv, ref.speedup_advantage);
    add("C-Nash (this work)", ev.cnash.success_rate(), cnash_tts, 1.0);

    bench::Json& node = report.root().arr("instances").push();
    bench::report_instance(node, ev);
    node.set("cnash_tts_s", cnash_tts);
    node.set("dwave_2000q_tts_s", tts_2000);
    node.set("dwave_advantage_tts_s", tts_adv);
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "C-Nash TTS = SA iterations x iteration latency (1 MHz controller, "
      "analog path\nin ns) / success rate; D-Wave TTS = (programming + 5000 "
      "reads) / success rate.\n");
  report.finish(static_cast<double>(total_runs));
  return 0;
}
