// Fig. 10: time-to-solution of the three Nash solvers. TTS = expected wall
// clock until the first successful run: run_time / success_rate (C-Nash) or
// job_time / success_rate (D-Wave job model). Success rates come from the
// measured proxies; the paper's reported speedups are printed alongside.

#include <cstdio>
#include <cmath>

#include "bench_common.hpp"
#include "core/timing.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  std::printf("=== Fig. 10: Time-to-Solution ===\n\n");
  util::Table table({"game", "solver", "success %", "TTS (s)",
                     "speedup vs C-Nash", "paper speedup"});

  const core::CNashTimingModel cnash_timing;
  const core::DWaveTimingModel t2000(core::dwave_2000q6_timing());
  const core::DWaveTimingModel tadv(core::dwave_advantage41_timing());

  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  bench::JsonReport report("fig10_time_to_solution", cli);
  std::size_t total_runs = 0;
  const auto instances = game::paper_benchmarks();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& inst = instances[i];
    const std::size_t runs =
        cli.runs > 0 ? cli.runs : bench::default_runs_for(i);
    std::fprintf(stderr, "running %s (%zu runs)...\n", inst.game.name().c_str(),
                 runs);
    const auto ev = bench::evaluate_instance(inst, runs, cli.threads);
    const auto ref = bench::paper_reference(i);
    total_runs += 3 * runs;  // three solvers per instance

    // Crossbar geometry for the C-Nash latency model.
    const auto shifted = inst.game.shifted_non_negative(0.0);
    const auto t_cells =
        static_cast<std::uint32_t>(shifted.payoff1().max_element());
    const xbar::MappingGeometry geom{inst.game.num_actions1(),
                                     inst.game.num_actions2(), inst.intervals,
                                     t_cells};

    const double cnash_tts = cnash_timing.time_to_solution_s(
        geom, inst.sa_iterations, ev.cnash.success_rate());
    const double tts_2000 =
        t2000.time_to_solution_s(ev.dwave_2000q.success_rate());
    const double tts_adv =
        tadv.time_to_solution_s(ev.dwave_advantage.success_rate());

    auto add = [&](const std::string& solver, double success, double tts,
                   double paper_speedup) {
      table.add_row({inst.game.name(), solver, core::percent(success),
                     std::isfinite(tts) ? util::Table::num(tts, 4) : "-",
                     std::isfinite(tts) && tts > 0 && cnash_tts > 0
                         ? util::Table::num(tts / cnash_tts, 1) + "X"
                         : "-",
                     paper_speedup < 0
                         ? "-"
                         : util::Table::num(paper_speedup, 1) + "X"});
    };
    add("D-Wave 2000 Q6 (proxy)", ev.dwave_2000q.success_rate(), tts_2000,
        ref.speedup_2000q);
    add("D-Wave Advantage 4.1 (proxy)", ev.dwave_advantage.success_rate(),
        tts_adv, ref.speedup_advantage);
    add("C-Nash (this work)", ev.cnash.success_rate(), cnash_tts, 1.0);

    bench::Json& node = report.root().arr("instances").push();
    bench::report_instance(node, ev);
    node.set("cnash_tts_s", cnash_tts);
    node.set("dwave_2000q_tts_s", tts_2000);
    node.set("dwave_advantage_tts_s", tts_adv);
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf(
      "C-Nash TTS = SA iterations x iteration latency (1 MHz controller, "
      "analog path\nin ns) / success rate; D-Wave TTS = (programming + 5000 "
      "reads) / success rate.\n");

  // ---- Replica-exchange series: iterations-to-target on a hard game --------
  // Parallel tempering changes WHAT the controller converges to, not just how
  // fast an iteration runs: on coordination games the pure equilibria sit
  // behind high barriers that plain SA at the production schedule rarely
  // crosses. The series sweeps an iterations ladder on Coordination-64
  // (64 actions, I = 4) and reports the first rung where each mode reaches
  // 50% success. Replicas of one ensemble occupy concurrent crossbar banks,
  // so an ensemble's modeled iteration count is that of a single run.
  std::printf("\n=== SA mode ablation: replica exchange vs plain SA ===\n\n");
  const std::size_t plain_runs = cli.runs > 0 ? 2 * cli.runs : 48;
  const std::size_t re_ensembles = cli.runs > 0 ? cli.runs : 24;
  const double target = 0.5;
  util::Table re_table(
      {"SA iterations", "plain SA success", "replica-exchange success"});
  bench::Json& re_node = report.root().obj("replica_exchange");
  re_node.set("game", "Coordination-64");
  re_node.set("intervals", 4.0);
  re_node.set("target_success", target);
  std::size_t plain_first = 0, re_first = 0;
  for (const std::size_t iters : {4000, 16000, 64000, 256000}) {
    core::SolveRequest req(game::coordination(64));
    req.backend = "exact-sa";
    req.intervals = 4;
    req.seed = 0xF160;
    req.sa.iterations = iters;
    req.runs = plain_runs;
    const auto plain = core::SolverRegistry::global().at("exact-sa").solve(req);
    req.sa.mode = core::SaMode::kReplicaExchange;
    req.runs = re_ensembles;
    const auto re = core::SolverRegistry::global().at("exact-sa").solve(req);
    total_runs += plain_runs + re_ensembles * req.sa.replicas;
    const double ps = plain.nash_rate();
    const double rs = re.nash_rate();
    if (plain_first == 0 && ps >= target) plain_first = iters;
    if (re_first == 0 && rs >= target) re_first = iters;
    re_table.add_row({util::Table::num(static_cast<double>(iters), 0),
                      core::percent(ps), core::percent(rs)});
    bench::Json& row = re_node.arr("ladder").push();
    row.set("iterations", static_cast<double>(iters));
    row.set("plain_success", ps);
    row.set("replica_exchange_success", rs);
    std::fprintf(stderr, "re ladder %zu: plain %.2f re %.2f\n", iters, ps, rs);
  }
  re_node.set("plain_first_success_iters", static_cast<double>(plain_first));
  re_node.set("re_first_success_iters", static_cast<double>(re_first));
  std::printf("%s\n", re_table.pretty().c_str());
  auto rung = [](std::size_t it) {
    return it == 0 ? std::string("> 256000")
                   : util::Table::num(static_cast<double>(it), 0);
  };
  std::printf(
      "Coordination-64, I = 4, %zu plain runs / %zu ensembles x 8 replicas "
      "per rung.\nFirst rung at >= 50%% success: plain SA %s iterations, "
      "replica exchange %s.\n",
      plain_runs, re_ensembles, rung(plain_first).c_str(),
      rung(re_first).c_str());

  report.finish(static_cast<double>(total_runs));
  return 0;
}
